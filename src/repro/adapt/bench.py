"""``bench-drift``: online adaptation vs. a frozen model under drift.

The benchmark replays a deterministic query stream against a testbed
whose content shifts mid-stream — every database is regenerated from a
*rotated* topic mixture and a fresh random stream, the sharpest drift
the corpus generator can produce — and measures, phase by phase, how an
adapting service and a frozen one cope with the same shift:

* ``pre`` — the stream before the switch, scored against the original
  content (both services are freshly trained, so this phase doubles as
  the identical-starting-point check);
* ``post_early`` — immediately after the switch: the adapted service is
  still accumulating evidence, so both should degrade;
* ``post_late`` — after the adapted service has had time to detect
  drift and hot-swap refreshed EDs: the benchmark's claim is that its
  selection quality and certainty calibration recover here while the
  frozen service stays degraded.

Content switching happens *under a live service* through
:class:`_SwitchableDatabase` proxies: the mediator the metasearcher was
trained over holds proxies whose targets are flipped between the
original and drifted corpora, exactly like a hidden-web database
changing out from under a deployed metasearcher. Summaries stay stale
throughout — serve-time adaptation can refresh error distributions,
not summaries — so the adapted service wins by learning the *new error
pattern* of its stale estimates, which is precisely the paper's ED
mechanism pointed at drift.

Scoring uses golden standards built over the *current* content of each
phase; certainty calibration is the mean absolute gap between an
answer's reported certainty and its actual correctness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.core.correctness import GoldenStandard
from repro.corpus.collections import testbed_specs
from repro.corpus.generator import DocumentGenerator
from repro.corpus.zipf import ZipfVocabulary
from repro.exceptions import ConfigurationError
from repro.experiments.setup import PaperSetupConfig, build_paper_context
from repro.hiddenweb.mediator import Mediator
from repro.metasearch.metasearcher import Metasearcher, MetasearcherConfig
from repro.service.server import MetasearchService, ServiceConfig
from repro.types import Query

__all__ = [
    "BENCH_DRIFT_SCHEMA_VERSION",
    "BenchDriftConfig",
    "run_bench_drift",
    "format_bench_drift",
    "validate_bench_drift",
]

#: Version of the committed ``BENCH_drift.json`` document. Bump on any
#: key change so trajectory tooling can refuse mixed-schema diffs.
BENCH_DRIFT_SCHEMA_VERSION = 1

_PHASES = ("pre", "post_early", "post_late")


class _SwitchableDatabase:
    """A database proxy whose target can be swapped out mid-stream.

    Presents the full :class:`HiddenWebDatabase` surface by delegation;
    only ``name`` is pinned (mediator identity must survive a content
    switch, like a real endpoint whose URL outlives its corpus).
    """

    def __init__(self, name: str, target) -> None:
        self._name = name
        self._target = target

    @property
    def name(self) -> str:
        return self._name

    def switch(self, target) -> None:
        self._target = target

    def __getattr__(self, attribute):
        return getattr(self._target, attribute)

    def __repr__(self) -> str:
        return f"_SwitchableDatabase({self._name!r})"


@dataclass(frozen=True)
class BenchDriftConfig:
    """Knobs of the drift benchmark.

    The adaptation knobs are deliberately more aggressive than the
    serving defaults (small window, low sample floor, loose
    significance, ``auto_swap`` on): the benchmark compresses days of
    drift into a few hundred queries, so the loop must react within
    one phase's worth of observations.

    The certainty target defaults to the probe-frugal regime (0.5,
    ~7 probes over 20 databases) rather than the paper's high-accuracy
    settings: with a generous probe budget APro probes its way to the
    truth regardless of model quality and the adapted/frozen gap
    vanishes. Adaptation earns its keep exactly when the model — not
    the probes — carries the answer.
    """

    scale: float = 0.05
    seed: int = 2004
    n_train: int = 200
    n_test: int = 80
    queries_per_phase: int = 60
    k: int = 3
    certainty: float = 0.5
    batch_size: int = 8
    max_probes: int | None = None
    train_queries_cap: int | None = 120
    drift_seed: int = 10_000
    drift_fraction: float = 0.5
    adapt_window: int = 192
    adapt_check_every: int = 48
    adapt_significance: float = 0.05
    adapt_min_samples: int = 12
    context: object | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.queries_per_phase < 1:
            raise ConfigurationError("queries_per_phase must be >= 1")
        if self.k < 1:
            raise ConfigurationError("k must be >= 1")
        if not 0.0 < self.drift_fraction <= 1.0:
            raise ConfigurationError("drift_fraction must be in (0, 1]")


def _drifted_specs(config: BenchDriftConfig, setup: PaperSetupConfig):
    """The testbed recipes of the post-switch world.

    A deterministic ``drift_fraction`` subset of databases has its
    topic mixture rotated to the next drifted database's mixture and
    its content seed shifted — same names, same sizes, different
    content. Partial drift is the realistic (and interesting) regime:
    serve-time adaptation refreshes error distributions, not
    summaries, so its recovery path is *demoting* databases whose
    stale estimates went bad and letting still-accurate ones absorb
    the demand; with every database drifted there is nowhere accurate
    left to shift to and both legs stay pinned near the floor.
    """
    specs = testbed_specs(setup.scale)
    count = max(2, round(len(specs) * config.drift_fraction))
    rng = random.Random(config.seed + 77)
    chosen = sorted(rng.sample(range(len(specs)), min(count, len(specs))))
    rotated = {
        index: specs[chosen[(position + 1) % len(chosen)]].topic_mixture
        for position, index in enumerate(chosen)
    }
    return [
        replace(
            spec,
            topic_mixture=rotated[i],
            seed=spec.seed + config.drift_seed,
        )
        if i in rotated
        else spec
        for i, spec in enumerate(specs)
    ]


def _phase_stream(
    queries: list[Query], phase_index: int, config: BenchDriftConfig
) -> list[Query]:
    """The same unique queries, replayed in a phase-specific order.

    Reusing one query set across phases keeps the quality comparison
    apples-to-apples: any per-phase difference comes from the content
    switch and the model, never from easier or harder queries.
    """
    stream = list(queries)
    random.Random(config.seed + 1000 + phase_index).shuffle(stream)
    return stream


def _replay_phase(
    service: MetasearchService,
    stream: list[Query],
    golden: GoldenStandard,
    config: BenchDriftConfig,
) -> dict:
    total_abs = total_part = total_probes = total_gap = 0.0
    answered = 0
    for query in stream:
        answer = service.serve(query, k=config.k, certainty=config.certainty)
        answered += 1
        cor_a, cor_p = golden.score(query, answer.selected, config.k)
        total_abs += cor_a
        total_part += cor_p
        total_probes += answer.probes
        total_gap += abs(answer.certainty - cor_a)
    count = max(answered, 1)
    return {
        "queries": len(stream),
        "answered": answered,
        "avg_absolute": round(total_abs / count, 6),
        "avg_partial": round(total_part / count, 6),
        "avg_probes": round(total_probes / count, 3),
        "calibration_error": round(total_gap / count, 6),
    }


def _run_leg(
    adapt: bool,
    metasearcher: Metasearcher,
    proxies: list[_SwitchableDatabase],
    mediators: dict[str, Mediator],
    goldens: dict[str, GoldenStandard],
    unique: list[Query],
    config: BenchDriftConfig,
) -> dict:
    """Replay all three phases through one service (adapted or frozen)."""
    for proxy in proxies:
        proxy.switch(mediators["original"][proxy.name])
    service_config = ServiceConfig(
        max_workers=1,
        batch_size=config.batch_size,
        cache_enabled=False,
        pool_workers=0,
        adapt=adapt,
        adapt_window=config.adapt_window,
        adapt_check_every=config.adapt_check_every,
        adapt_significance=config.adapt_significance,
        adapt_min_samples=config.adapt_min_samples,
        adapt_auto_swap=True,
    )
    with MetasearchService(metasearcher, config=service_config) as service:
        initial_fingerprint = service.state_fingerprint
        phases: dict[str, dict] = {}
        for phase_index, phase in enumerate(_PHASES):
            if phase == "post_early":
                # The drift moment: every database's content flips to
                # the rotated-topic corpus under the live service.
                for proxy in proxies:
                    proxy.switch(mediators["drifted"][proxy.name])
            content = "original" if phase == "pre" else "drifted"
            phases[phase] = _replay_phase(
                service,
                _phase_stream(unique, phase_index, config),
                goldens[content],
                config,
            )
        counters = service.snapshot()["counters"]
        adaptation = service.adaptation
        return {
            "adapt": adapt,
            "phases": phases,
            "fingerprints": {
                "initial": initial_fingerprint,
                "final": service.state_fingerprint,
            },
            "drift": {
                "observations": int(counters["adapt_observations_total"]),
                "checks": int(counters["adapt_drift_checks"]),
                "flagged": int(counters["adapt_drift_flagged"]),
                "swaps": int(counters["adapt_swaps_total"]),
                "flagged_databases": (
                    sorted(
                        {
                            name
                            for report in adaptation.swaps
                            for name in report.drifted
                        }
                    )
                    if adaptation is not None
                    else []
                ),
            },
            "lost_requests": sum(
                phase["queries"] - phase["answered"]
                for phase in phases.values()
            ),
        }


def run_bench_drift(config: BenchDriftConfig | None = None) -> dict:
    """Run the drift benchmark; returns the ``BENCH_drift.json``
    document (stable schema, JSON-able)."""
    config = config or BenchDriftConfig()
    context = config.context
    if context is None:
        context = build_paper_context(
            PaperSetupConfig(
                scale=config.scale,
                seed=config.seed,
                n_train=config.n_train,
                n_test=config.n_test,
            )
        )
    setup = context.config

    background = ZipfVocabulary(
        setup.background_vocab_size, seed=setup.seed + 1
    )
    generator = DocumentGenerator(context.registry, background)
    drifted_corpora = {
        spec.name: generator.generate(spec)
        for spec in _drifted_specs(config, setup)
    }
    mediators = {
        "original": context.mediator,
        "drifted": Mediator.from_documents(
            drifted_corpora, analyzer=context.analyzer
        ),
    }
    goldens = {
        "original": context.golden,
        "drifted": GoldenStandard(mediators["drifted"], setup.definition),
    }

    # The metasearcher trains over switchable proxies pointed at the
    # original content; the drift moment later flips their targets
    # under the live service.
    proxies = [
        _SwitchableDatabase(name, mediators["original"][name])
        for name in mediators["original"].names
    ]
    switchable = Mediator(proxies)
    metasearcher = Metasearcher(
        switchable,
        MetasearcherConfig(
            probe_batch_size=config.batch_size,
            max_probes=config.max_probes,
        ),
        analyzer=context.analyzer,
    )
    train = context.train_queries
    if config.train_queries_cap is not None:
        train = train[: config.train_queries_cap]
    metasearcher.train(train)

    unique = context.test_queries[: config.queries_per_phase]
    if not unique:
        raise ConfigurationError("testbed produced no test queries")

    legs = {
        "adapted": _run_leg(
            True, metasearcher, proxies, mediators, goldens, unique, config
        ),
        "frozen": _run_leg(
            False, metasearcher, proxies, mediators, goldens, unique, config
        ),
    }

    adapted_late = legs["adapted"]["phases"]["post_late"]
    frozen_late = legs["frozen"]["phases"]["post_late"]
    quality_delta = round(
        adapted_late["avg_absolute"] - frozen_late["avg_absolute"], 6
    )
    calibration_delta = round(
        frozen_late["calibration_error"]
        - adapted_late["calibration_error"],
        6,
    )
    return {
        "schema_version": BENCH_DRIFT_SCHEMA_VERSION,
        "benchmark": "bench-drift",
        "config": {
            "scale": config.scale,
            "seed": config.seed,
            "queries_per_phase": config.queries_per_phase,
            "k": config.k,
            "certainty": config.certainty,
            "batch_size": config.batch_size,
            "max_probes": config.max_probes,
            "drift_seed": config.drift_seed,
            "drift_fraction": config.drift_fraction,
            "adapt_window": config.adapt_window,
            "adapt_check_every": config.adapt_check_every,
            "adapt_significance": config.adapt_significance,
            "adapt_min_samples": config.adapt_min_samples,
            "databases": len(mediators["original"]),
        },
        "phases": list(_PHASES),
        "runs": legs,
        "derived": {
            "drift_detected": legs["adapted"]["drift"]["flagged"] > 0,
            "swaps": legs["adapted"]["drift"]["swaps"],
            "model_changed": (
                legs["adapted"]["fingerprints"]["initial"]
                != legs["adapted"]["fingerprints"]["final"]
            ),
            "post_late_quality_delta": quality_delta,
            "post_late_calibration_delta": calibration_delta,
            # "Recovered" = by the late phase the adapted service is
            # strictly better-calibrated and no worse on selection
            # quality than the frozen one.
            "adaptation_recovers": bool(
                calibration_delta > 0 and quality_delta >= 0
            ),
        },
    }


def validate_bench_drift(document: dict) -> list[str]:
    """Schema and correctness failures of a bench-drift document.

    Used by ``bench-drift --check`` (CI smoke). Structural gates only
    plus the benchmark's headline claims: drift was detected, at least
    one swap installed a changed model, no request was lost, and the
    adapted run recovered (calibration strictly better, quality no
    worse, in ``post_late``).
    """
    failures: list[str] = []
    if document.get("schema_version") != BENCH_DRIFT_SCHEMA_VERSION:
        failures.append(
            f"schema_version must be {BENCH_DRIFT_SCHEMA_VERSION}, "
            f"got {document.get('schema_version')!r}"
        )
    for key in ("benchmark", "config", "phases", "runs", "derived"):
        if key not in document:
            failures.append(f"missing top-level key {key!r}")
    runs = document.get("runs") or {}
    for leg in ("adapted", "frozen"):
        run = runs.get(leg)
        if run is None:
            failures.append(f"missing run {leg!r}")
            continue
        for phase in _PHASES:
            if phase not in run.get("phases", {}):
                failures.append(f"run {leg!r} missing phase {phase!r}")
        if run.get("lost_requests", 1) != 0:
            failures.append(
                f"run {leg!r} lost {run.get('lost_requests')} requests"
            )
    frozen = runs.get("frozen") or {}
    if frozen.get("drift", {}).get("swaps", 0) != 0:
        failures.append("frozen run performed swaps")
    if (
        frozen.get("fingerprints", {}).get("initial")
        != frozen.get("fingerprints", {}).get("final")
    ):
        failures.append("frozen run's model fingerprint changed")
    derived = document.get("derived") or {}
    if not derived.get("drift_detected"):
        failures.append("adapted run never flagged drift")
    if derived.get("swaps", 0) < 1:
        failures.append("adapted run never swapped a refreshed model")
    if not derived.get("model_changed"):
        failures.append("adapted run's final model equals the initial one")
    if not derived.get("adaptation_recovers"):
        failures.append(
            "post_late recovery claim failed: calibration_delta="
            f"{derived.get('post_late_calibration_delta')}, "
            f"quality_delta={derived.get('post_late_quality_delta')}"
        )
    return failures


def format_bench_drift(document: dict) -> str:
    """Human-readable phase table of a bench-drift document."""
    config = document.get("config", {})
    lines = [
        f"databases            : {config.get('databases')}",
        f"queries per phase    : {config.get('queries_per_phase')} "
        f"(k={config.get('k')}, certainty={config.get('certainty')})",
        f"{'run':<8} {'phase':<11} {'Cor_a':>7} {'Cor_p':>7} "
        f"{'probes':>7} {'|cal err|':>10}",
    ]
    for leg in ("adapted", "frozen"):
        run = document.get("runs", {}).get(leg, {})
        for phase in _PHASES:
            row = run.get("phases", {}).get(phase, {})
            lines.append(
                f"{leg:<8} {phase:<11} {row.get('avg_absolute', 0):>7.3f} "
                f"{row.get('avg_partial', 0):>7.3f} "
                f"{row.get('avg_probes', 0):>7.2f} "
                f"{row.get('calibration_error', 0):>10.4f}"
            )
    adapted = document.get("runs", {}).get("adapted", {})
    drift = adapted.get("drift", {})
    derived = document.get("derived", {})
    lines += [
        f"drift checks/flagged : {drift.get('checks')} / "
        f"{drift.get('flagged')} "
        f"(databases: {', '.join(drift.get('flagged_databases', [])) or '-'})",
        f"model swaps          : {drift.get('swaps')} "
        f"({adapted.get('fingerprints', {}).get('initial')} -> "
        f"{adapted.get('fingerprints', {}).get('final')})",
        f"post-late deltas     : quality "
        f"{derived.get('post_late_quality_delta'):+.3f}, calibration "
        f"{derived.get('post_late_calibration_delta'):+.4f} "
        f"(adapted vs frozen)",
        f"adaptation recovers  : {derived.get('adaptation_recovers')}",
    ]
    return "\n".join(lines)
