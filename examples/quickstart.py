"""Quickstart: mediate Hidden-Web databases and metasearch with certainty.

Builds a small synthetic health-web testbed, trains the probabilistic
metasearcher on a simulated query trace, and answers a query with a
user-chosen certainty level.

Run:  python examples/quickstart.py

Environment knobs (used by CI to smoke-run at a tiny scale):
REPRO_EXAMPLE_SCALE, REPRO_EXAMPLE_TRAIN.
"""

from __future__ import annotations

import os

from repro import Mediator, Metasearcher, MetasearcherConfig, build_health_testbed
from repro.corpus import default_topic_registry
from repro.corpus.zipf import ZipfVocabulary
from repro.querylog import QueryTraceGenerator
from repro.text.analyzer import Analyzer


SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.1"))
N_TRAIN = int(os.environ.get("REPRO_EXAMPLE_TRAIN", "400"))


def main() -> None:
    print("Building the 20-database health-web testbed (small scale)...")
    analyzer = Analyzer()
    mediator = Mediator.from_documents(
        build_health_testbed(scale=SCALE), analyzer=analyzer
    )
    for db in list(mediator)[:5]:
        print(f"  {db.name:<16} {db.size:>5} documents")
    print(f"  ... and {len(mediator) - 5} more databases\n")

    print("Generating a training query trace and learning error models...")
    trace = QueryTraceGenerator(
        default_topic_registry(seed=2004),
        ZipfVocabulary(4000, seed=2005),
        analyzer=analyzer,
        seed=7,
    )
    train_queries = trace.generate(N_TRAIN)
    searcher = Metasearcher(
        mediator, MetasearcherConfig(samples_per_type=50), analyzer=analyzer
    )
    searcher.train(train_queries)
    print(f"  trained: {searcher.error_model!r}")
    print(f"  training probes used: {mediator.total_probes()}\n")

    mediator.reset_accounting()
    query_text = "breast cancer chemotherapy"
    print(f"Metasearching: {query_text!r} (k=3, certainty 0.8)")
    answer = searcher.search(query_text, k=3, certainty=0.8, limit=5)
    print(f"  selected databases : {', '.join(answer.selected)}")
    print(f"  answer certainty   : {answer.certainty:.3f}")
    print(f"  probes spent       : {answer.probes_used}")
    print("  fused results:")
    for hit in answer.hits:
        print(f"    {hit.database:<16} doc {hit.doc_id:>5}  score {hit.score:.3f}")


if __name__ == "__main__":
    main()
