"""Observability: request tracing across the serving stack.

Dependency-free (stdlib only) by design — this package is imported by
every tier including the spawn-started pool workers, so it must cost
nothing to import and nothing measurable when tracing is off.

See ``docs/OBSERVABILITY.md`` for the trace model and span catalog.
"""

from repro.obs.report import format_tier_breakdown, load_spans, tier_breakdown
from repro.obs.sinks import (
    FileTraceSink,
    MultiTraceSink,
    RingBufferTraceSink,
    StderrTraceSink,
    TraceSink,
)
from repro.obs.trace import (
    TRACE_ENV,
    NullSpan,
    Span,
    Tracer,
    collecting_trace,
    current_trace_id,
    replay_spans,
    span,
    trace_active,
    wire_context,
)

__all__ = [
    "TRACE_ENV",
    "Span",
    "NullSpan",
    "Tracer",
    "span",
    "trace_active",
    "current_trace_id",
    "wire_context",
    "collecting_trace",
    "replay_spans",
    "TraceSink",
    "RingBufferTraceSink",
    "StderrTraceSink",
    "FileTraceSink",
    "MultiTraceSink",
    "tier_breakdown",
    "format_tier_breakdown",
    "load_spans",
]
