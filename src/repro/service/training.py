"""Parallel, fault-tolerant, checkpointed ED training.

The offline phase is the probe-hungry half of the paper: §4 samples
every database with thousands of training queries (~50 per (database,
type) slice), and against real remote backends that cost is dominated
by network latency — the same latency the serving layer already knows
how to overlap. :class:`ParallelEDTrainer` routes the sequential
:class:`~repro.core.training.EDTrainer` loop through the serving
infrastructure:

* each training query's probes fan out over a
  :class:`~repro.service.executor.ProbeExecutor` worker pool of
  :class:`~repro.service.resilience.ResilientDatabase`-wrapped backends
  (timeouts, bounded retries, deterministic backoff);
* a probe that exhausts its retry budget is *dropped* — the slice
  simply receives one fewer sample — instead of aborting the run;
* progress reports into a
  :class:`~repro.service.metrics.MetricsRegistry`;
* the partially trained model is checkpointed to versioned JSON every
  ``checkpoint_every`` queries, and ``train(..., resume=True)``
  continues from the last checkpoint.

Determinism contract — the same one
:class:`~repro.service.executor.ProbeExecutor` gives query-time
probing: observations are applied in mediator order, never completion
order, and within one query no database's observation can change
another database's skip decision (see
:class:`~repro.core.training.PlannedProbe`). The resulting
:meth:`~repro.core.training.ErrorModel.state_dict` is therefore
bit-identical to the sequential trainer's for any worker count, and a
killed-and-resumed run converges to the same state as an uninterrupted
one (``tests/test_service_training.py``).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Mapping, Sequence
from pathlib import Path

from repro.core.errors import DEFAULT_ERROR_EDGES, DEFAULT_ESTIMATE_FLOOR
from repro.core.query_types import QueryTypeClassifier
from repro.core.training import EDTrainer, ErrorModel
from repro.exceptions import ConfigurationError, TrainingError
from repro.hiddenweb.database import RelevancyDefinition
from repro.hiddenweb.mediator import Mediator
from repro.persistence import (
    TrainingCheckpoint,
    load_training_checkpoint,
    save_training_checkpoint,
)
from repro.service.executor import ProbeExecutor
from repro.service.faults import FaultInjector
from repro.service.metrics import MetricsRegistry
from repro.service.resilience import RetryPolicy
from repro.summaries.estimators import RelevancyEstimator
from repro.summaries.summary import ContentSummary
from repro.types import Query

__all__ = ["ParallelEDTrainer"]

#: Value the executor substitutes for a probe that exhausted its
#: retries. Real relevancies are finite, so NaN unambiguously marks the
#: observation as lost; the trainer drops it instead of recording a
#: fabricated error.
_DROPPED = float("nan")


def _dropped_fallback(name: str, query: Query) -> float:
    return _DROPPED


class ParallelEDTrainer(EDTrainer):
    """Concurrent, checkpointed drop-in for :class:`EDTrainer`.

    Parameters (beyond :class:`~repro.core.training.EDTrainer`'s)
    ----------
    max_workers:
        Probe thread-pool width; ``1`` reproduces the sequential
        trainer's wall-clock behaviour.
    policy:
        Timeout/retry policy for every database (default
        :class:`~repro.service.resilience.RetryPolicy`).
    injector:
        Optional deterministic fault schedule (tests and benchmarks).
    metrics:
        Registry receiving trainer and per-probe instruments (created
        if omitted).
    sleeper:
        Injectable sleep forwarded to the resilient wrappers.
    checkpoint_path:
        Where to write periodic training checkpoints; ``None`` disables
        checkpointing (and ``resume=True`` is then rejected).
    checkpoint_every:
        Queries between checkpoints (a final one is always written).
    on_progress:
        Optional callback ``(queries_done, model)`` fired after each
        query round — hosts use it for progress bars, tests use it to
        inject crashes at a precise point.
    """

    def __init__(
        self,
        mediator: Mediator,
        summaries: Mapping[str, ContentSummary],
        estimator: RelevancyEstimator,
        classifier: QueryTypeClassifier | None = None,
        definition: RelevancyDefinition = RelevancyDefinition.DOCUMENT_FREQUENCY,
        samples_per_type: int | None = 50,
        edges: Sequence[float] = DEFAULT_ERROR_EDGES,
        estimate_floor: float = DEFAULT_ESTIMATE_FLOOR,
        min_samples: int = 5,
        max_workers: int = 8,
        policy: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
        sleeper: Callable[[float], None] | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 25,
        on_progress: Callable[[int, ErrorModel], None] | None = None,
    ) -> None:
        super().__init__(
            mediator,
            summaries,
            estimator,
            classifier=classifier,
            definition=definition,
            samples_per_type=samples_per_type,
            edges=edges,
            estimate_floor=estimate_floor,
            min_samples=min_samples,
        )
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._metrics = metrics or MetricsRegistry()
        self._checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self._checkpoint_every = checkpoint_every
        self._on_progress = on_progress
        self._executor = ProbeExecutor(
            mediator,
            definition=definition,
            max_workers=max_workers,
            policy=policy,
            injector=injector,
            fallback=_dropped_fallback,
            metrics=self._metrics,
            sleeper=sleeper,
        )
        self.max_workers = max_workers
        # Pre-registered for a stable key-set (see service metrics).
        for counter in (
            "training_queries",
            "training_observations",
            "training_probes_dropped",
            "training_slices_saturated",
            "training_checkpoints",
        ):
            self._metrics.counter(counter)

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry all trainer instruments report to."""
        return self._metrics

    @property
    def executor(self) -> ProbeExecutor:
        """The probe executor (resilient wrappers in mediator order)."""
        return self._executor

    # -- training ----------------------------------------------------------

    def train(
        self, queries: Iterable[Query], resume: bool = False
    ) -> ErrorModel:
        """Probe databases with *queries*, concurrently, and return the model.

        With ``resume=True``, the last checkpoint (if any) is loaded,
        its configuration fingerprint verified, and the first
        ``queries_done`` queries of the stream are skipped without
        probing — the stream must therefore be the same one the
        interrupted run was given. A missing checkpoint file simply
        starts from scratch (a run killed before its first checkpoint
        leaves nothing behind).
        """
        if resume and self._checkpoint_path is None:
            raise ConfigurationError(
                "resume=True requires a checkpoint_path"
            )
        model = self.new_model()
        start_index = 0
        if (
            resume
            and self._checkpoint_path is not None
            and self._checkpoint_path.exists()
        ):
            checkpoint = load_training_checkpoint(self._checkpoint_path)
            self._check_fingerprint(checkpoint)
            model = ErrorModel.from_state_dict(checkpoint.error_model_state)
            start_index = checkpoint.queries_done
        saturated = {
            key
            for key, count in model.slice_counts().items()
            if self._samples_per_type is not None
            and count >= self._samples_per_type
        }
        self._metrics.counter("training_slices_saturated").inc(
            len(saturated)
        )

        queries_done = start_index
        for index, query in enumerate(queries):
            if index < start_index:
                continue
            self._train_one(model, query, saturated)
            queries_done = index + 1
            self._metrics.counter("training_queries").inc()
            if (
                self._checkpoint_path is not None
                and queries_done % self._checkpoint_every == 0
            ):
                self._write_checkpoint(model, queries_done)
            if self._on_progress is not None:
                self._on_progress(queries_done, model)
        if (
            self._checkpoint_path is not None
            and queries_done % self._checkpoint_every != 0
        ):
            self._write_checkpoint(model, queries_done)
        return model

    def _train_one(
        self, model: ErrorModel, query: Query, saturated: set
    ) -> None:
        """Plan, fan out, and apply one query round in mediator order."""
        plan = self.plan_query(model, query)
        if not plan:
            return
        values = self._executor.probe_batch(
            query, [planned.index for planned in plan]
        )
        observations = self._metrics.counter("training_observations")
        dropped = self._metrics.counter("training_probes_dropped")
        saturations = self._metrics.counter("training_slices_saturated")
        for planned, actual in zip(plan, values):
            if math.isnan(actual):
                dropped.inc()
                continue
            self.apply_observation(model, planned, actual)
            observations.inc()
            key = (planned.database_name, planned.query_type)
            if (
                self._samples_per_type is not None
                and key not in saturated
                and model.sample_count(planned.database_name, planned.query_type)
                >= self._samples_per_type
            ):
                saturated.add(key)
                saturations.inc()

    # -- checkpointing -----------------------------------------------------

    def _fingerprint(self) -> dict:
        return {
            "databases": [db.name for db in self._mediator],
            "definition": self._definition.value,
            "samples_per_type": self._samples_per_type,
            "edges": [float(edge) for edge in self._edges],
            "estimate_floor": float(self._estimate_floor),
            "min_samples": self._min_samples,
        }

    def _check_fingerprint(self, checkpoint: TrainingCheckpoint) -> None:
        expected = self._fingerprint()
        if checkpoint.fingerprint != expected:
            raise TrainingError(
                "checkpoint was written under a different trainer "
                f"configuration: {checkpoint.fingerprint} != {expected}"
            )

    def _write_checkpoint(self, model: ErrorModel, queries_done: int) -> None:
        assert self._checkpoint_path is not None
        save_training_checkpoint(
            TrainingCheckpoint(
                queries_done=queries_done,
                error_model_state=model.state_dict(),
                fingerprint=self._fingerprint(),
            ),
            self._checkpoint_path,
        )
        self._metrics.counter("training_checkpoints").inc()

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> None:
        """Release the probe worker threads."""
        self._executor.shutdown()

    def __enter__(self) -> "ParallelEDTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ParallelEDTrainer(databases={len(self._mediator)}, "
            f"workers={self.max_workers}, "
            f"checkpoint={self._checkpoint_path is not None})"
        )
