"""Concurrent probe dispatch: the serving layer's `BatchProber`.

APro's batch hook (``batch_size`` in :meth:`repro.core.probing.APro.run`)
picks up to *b* databases per decision round; the paper executes those
probes one after another. :class:`ProbeExecutor` executes each round
through a :class:`concurrent.futures.ThreadPoolExecutor` instead, so a
round's wall-clock cost is the *slowest* probe rather than the *sum* —
the difference between 400 ms and 60 ms per round against real remote
backends.

Observations are always applied in the policy's choice order (not
completion order), so selections are bit-identical to the sequential
path for any worker count. A probe that fails even after its database's
retry budget degrades gracefully: the executor substitutes the caller
supplied fallback (the RD point estimate) instead of aborting the
query.
"""

from __future__ import annotations

import contextvars
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor

from repro.exceptions import ConfigurationError
from repro.hiddenweb.database import RelevancyDefinition
from repro.hiddenweb.mediator import Mediator
from repro.obs import span
from repro.service.faults import FaultInjector
from repro.service.metrics import MetricsRegistry
from repro.service.resilience import (
    ProbeFailedError,
    ResilientDatabase,
    RetryPolicy,
)
from repro.types import Query

__all__ = ["ProbeExecutor"]

#: Fallback signature: (database name, query) -> substitute relevancy.
FallbackFn = Callable[[str, Query], float]


class ProbeExecutor:
    """Thread-pooled, fault-tolerant probe execution over a mediator.

    Implements the :class:`~repro.core.probing.BatchProber` protocol:
    hand an instance to :class:`~repro.core.probing.APro` (or let
    :class:`~repro.service.server.MetasearchService` do it) and every
    probe round runs concurrently.

    Parameters
    ----------
    mediator:
        The databases to probe. Each is wrapped in a
        :class:`ResilientDatabase` sharing *policy*, *injector* and
        *metrics*.
    definition:
        Relevancy definition probes are reduced under.
    max_workers:
        Thread-pool width. ``1`` reproduces the serial path exactly
        (useful as a benchmark baseline).
    policy:
        Timeout/retry policy applied to every database.
    injector:
        Optional deterministic fault schedule shared by all databases.
    fallback:
        Called when a database exhausts its retries; returns the value
        to use instead (the serving layer passes the selector's point
        estimate, the paper's r̂). Without a fallback the failure
        propagates as :class:`ProbeFailedError`.
    metrics:
        Registry receiving executor and per-probe instruments.
    sleeper:
        Forwarded to the resilient wrappers (tests inject a recorder).
    """

    def __init__(
        self,
        mediator: Mediator,
        definition: RelevancyDefinition = RelevancyDefinition.DOCUMENT_FREQUENCY,
        max_workers: int = 8,
        policy: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        fallback: FallbackFn | None = None,
        metrics: MetricsRegistry | None = None,
        sleeper=None,
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._mediator = mediator
        self._definition = definition
        self._fallback = fallback
        self._metrics = metrics or MetricsRegistry()
        kwargs = {} if sleeper is None else {"sleeper": sleeper}
        self._databases = [
            ResilientDatabase(
                db,
                policy=policy,
                injector=injector,
                metrics=self._metrics,
                **kwargs,
            )
            for db in mediator
        ]
        # Pre-registered so clean and degraded runs export the same
        # metric key-set.
        self._metrics.counter("probe_fallbacks")
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="probe"
        )
        self.max_workers = max_workers

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry all instruments report to."""
        return self._metrics

    @property
    def databases(self) -> list[ResilientDatabase]:
        """The resilient wrappers, in mediation order."""
        return list(self._databases)

    def probe_batch(
        self, query: Query, indices: Sequence[int]
    ) -> list[float]:
        """Probe *indices* concurrently; observations in choice order."""
        if not indices:
            return []
        # Each submit copies the caller's contextvars so a probe thread
        # sees the request's active trace (a Context can only be
        # entered once at a time, hence one copy per future).
        futures = [
            self._pool.submit(
                contextvars.copy_context().run,
                self._probe_one,
                index,
                query,
            )
            for index in indices
        ]
        return [future.result() for future in futures]

    def _probe_one(self, index: int, query: Query) -> float:
        database = self._databases[index]
        with span(f"probe.{database.name}") as probe_span:
            try:
                return database.probe_relevancy(query, self._definition)
            except ProbeFailedError:
                if self._fallback is None:
                    raise
                probe_span.set_outcome("fallback")
                self._metrics.counter("probe_fallbacks").inc()
                return self._fallback(database.name, query)

    def shutdown(self) -> None:
        """Release the worker threads."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ProbeExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ProbeExecutor(databases={len(self._databases)}, "
            f"workers={self.max_workers})"
        )
