"""Tests for ResilientDatabase: timeouts, retries, degradation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.service.faults import FaultInjector
from repro.service.metrics import MetricsRegistry
from repro.service.resilience import (
    ProbeFailedError,
    ResilientDatabase,
    RetryPolicy,
)


class RecordingSleeper:
    """Capture requested sleeps instead of sleeping."""

    def __init__(self):
        self.sleeps = []

    def __call__(self, seconds):
        self.sleeps.append(seconds)


@pytest.fixture()
def query(analyzer):
    return analyzer.query("cancer treatment")


@pytest.fixture()
def inner(tiny_mediator):
    return tiny_mediator["onco"]


def wrap(inner, **kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("sleeper", RecordingSleeper())
    return ResilientDatabase(inner, **kwargs)


class TestDelegation:
    def test_surface(self, inner, query):
        resilient = wrap(inner)
        assert resilient.name == inner.name
        assert resilient.size == inner.size
        assert resilient.accounting is inner.accounting
        assert resilient.inner is inner
        assert resilient.relevancy(query) == inner.relevancy(query)
        assert resilient.probe(query).num_matches == inner.probe(query).num_matches


class TestHappyPath:
    def test_matches_inner_probe(self, inner, query):
        resilient = wrap(inner)
        assert resilient.probe_relevancy(query) == inner.relevancy(query)

    def test_counts_one_probe(self, inner, query):
        metrics = MetricsRegistry()
        wrap(inner, metrics=metrics).probe_relevancy(query)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["probes_issued"] == 1
        # Headline counters are pre-registered so clean runs report
        # explicit zeros instead of omitting the key.
        assert snapshot["counters"]["probe_retries"] == 0
        assert snapshot["counters"]["probe_timeouts"] == 0
        assert snapshot["counters"]["probes_failed"] == 0


class TestInjectedFaults:
    def test_retry_after_blackout_recovers(self, inner, query):
        metrics = MetricsRegistry()
        injector = FaultInjector(seed=1, blackouts={inner.name: (0, 1)})
        resilient = wrap(
            inner,
            injector=injector,
            metrics=metrics,
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.0),
        )
        value = resilient.probe_relevancy(query)
        assert value == inner.relevancy(query)
        counters = metrics.snapshot()["counters"]
        assert counters["probes_issued"] == 2
        assert counters["probe_retries"] == 1
        assert counters["probe_blackouts"] == 1

    def test_permanent_blackout_exhausts_retries(self, inner, query):
        metrics = MetricsRegistry()
        injector = FaultInjector(seed=1, blackouts={inner.name: (0, 99)})
        resilient = wrap(
            inner,
            injector=injector,
            metrics=metrics,
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.0),
        )
        with pytest.raises(ProbeFailedError):
            resilient.probe_relevancy(query)
        counters = metrics.snapshot()["counters"]
        assert counters["probes_issued"] == 3
        assert counters["probe_blackouts"] == 3
        assert counters["probes_failed"] == 1

    def test_timeout_abandons_at_deadline(self, inner, query):
        metrics = MetricsRegistry()
        sleeper = RecordingSleeper()
        injector = FaultInjector(seed=1, mean_latency_s=1.0)
        resilient = wrap(
            inner,
            injector=injector,
            metrics=metrics,
            sleeper=sleeper,
            policy=RetryPolicy(
                timeout_s=0.05, max_retries=1, backoff_base_s=0.0
            ),
        )
        with pytest.raises(ProbeFailedError):
            resilient.probe_relevancy(query)
        counters = metrics.snapshot()["counters"]
        assert counters["probe_timeouts"] == 2
        # The client hangs up at the deadline, not after full latency.
        assert all(s <= 0.05 for s in sleeper.sleeps)

    def test_latency_sleeps_injected(self, inner, query):
        sleeper = RecordingSleeper()
        injector = FaultInjector(seed=1, mean_latency_s=0.01)
        resilient = wrap(
            inner,
            injector=injector,
            sleeper=sleeper,
            policy=RetryPolicy(timeout_s=1.0),
        )
        resilient.probe_relevancy(query)
        assert len(sleeper.sleeps) == 1
        assert 0.005 <= sleeper.sleeps[0] <= 0.015


class TestRetriableInnerErrors:
    class Flaky:
        """A database whose first probes fail with a network error."""

        name = "flaky"

        def __init__(self, failures, value=7.0):
            self.failures = failures
            self.value = value
            self.calls = 0

        def probe_relevancy(self, query, definition=None):
            self.calls += 1
            if self.calls <= self.failures:
                raise ConnectionError("connection reset")
            return self.value

    def test_retries_then_succeeds(self, query):
        flaky = self.Flaky(failures=2)
        metrics = MetricsRegistry()
        resilient = wrap(
            flaky,
            metrics=metrics,
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.0),
        )
        assert resilient.probe_relevancy(query) == 7.0
        counters = metrics.snapshot()["counters"]
        assert counters["probe_errors"] == 2
        assert counters["probe_retries"] == 2

    def test_deterministic_errors_propagate(self, query):
        class Broken:
            name = "broken"

            def probe_relevancy(self, query, definition=None):
                raise ValueError("not retriable")

        with pytest.raises(ValueError):
            wrap(Broken()).probe_relevancy(query)


class TestBackoff:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter=0.5)
        assert policy.backoff_s("db", 3, 0) == policy.backoff_s("db", 3, 0)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_multiplier=2.0, jitter=0.0
        )
        assert policy.backoff_s("db", 0, 0) == pytest.approx(0.1)
        assert policy.backoff_s("db", 0, 1) == pytest.approx(0.2)
        assert policy.backoff_s("db", 0, 2) == pytest.approx(0.4)

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter=0.5)
        for attempt in range(50):
            backoff = policy.backoff_s("db", attempt, 0)
            assert 0.1 <= backoff <= 0.15

    def test_backoff_sleeps_happen(self, inner, query):
        sleeper = RecordingSleeper()
        metrics = MetricsRegistry()
        injector = FaultInjector(seed=1, blackouts={inner.name: (0, 99)})
        resilient = wrap(
            inner,
            injector=injector,
            metrics=metrics,
            sleeper=sleeper,
            policy=RetryPolicy(
                max_retries=2, backoff_base_s=0.01, jitter=0.0
            ),
        )
        with pytest.raises(ProbeFailedError):
            resilient.probe_relevancy(query)
        assert 0.01 in sleeper.sleeps
        assert 0.02 in sleeper.sleeps


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_s": 0.0},
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"backoff_multiplier": 0.5},
            {"jitter": 2.0},
        ],
    )
    def test_invalid_policy(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestStableKeySet:
    def test_clean_and_faulty_runs_export_same_counters(self, inner, query):
        # Regression: probe_slow and probe_blackouts used to appear
        # only once first incremented, so clean and degraded snapshots
        # had different key-sets and could not be diffed.
        clean_metrics = MetricsRegistry()
        wrap(inner, metrics=clean_metrics).probe_relevancy(query)

        faulty_metrics = MetricsRegistry()
        injector = FaultInjector(seed=1, blackouts={inner.name: (0, 1)})
        wrap(
            inner,
            injector=injector,
            metrics=faulty_metrics,
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.0),
        ).probe_relevancy(query)

        clean = clean_metrics.snapshot()
        faulty = faulty_metrics.snapshot()
        assert set(clean["counters"]) == set(faulty["counters"])
        assert clean["counters"]["probe_blackouts"] == 0
        assert clean["counters"]["probe_slow"] == 0
        # The injected run additionally owns the simulated-latency
        # histogram — registered at construction, not first use.
        assert set(faulty["histograms"]) - set(clean["histograms"]) == {
            "probe_latency_sim_ms"
        }

    def test_counters_exist_before_any_probe(self, inner):
        metrics = MetricsRegistry()
        wrap(inner, metrics=metrics)
        counters = metrics.snapshot()["counters"]
        for name in (
            "probes_issued",
            "probe_retries",
            "probe_timeouts",
            "probe_errors",
            "probes_failed",
            "probe_slow",
            "probe_blackouts",
        ):
            assert counters[name] == 0


class TestSchedulingIndependentBackoff:
    def test_backoff_schedule_independent_of_probe_order(
        self, inner, analyzer
    ):
        # Regression: backoff jitter used to be keyed on the wrapper's
        # shared attempt counter, so the sleeps a given query saw
        # depended on how many probes happened to run before it — a
        # scheduling artifact. Jitter is now a pure function of
        # (database, query, retry): reordering the probes must not
        # change any query's backoff schedule.
        query_a = analyzer.query("cancer treatment")
        query_b = analyzer.query("heart disease")

        def backoff_schedules(order):
            sleeper = RecordingSleeper()
            injector = FaultInjector(
                seed=1, blackouts={inner.name: (0, 99)}
            )
            resilient = wrap(
                inner,
                injector=injector,
                sleeper=sleeper,
                policy=RetryPolicy(
                    max_retries=2, backoff_base_s=0.01, jitter=1.0
                ),
            )
            schedules = {}
            for probe_query in order:
                start = len(sleeper.sleeps)
                with pytest.raises(ProbeFailedError):
                    resilient.probe_relevancy(probe_query)
                schedules[str(probe_query)] = sleeper.sleeps[start:]
            return schedules

        first = backoff_schedules([query_a, query_b])
        second = backoff_schedules([query_b, query_a])
        assert first == second
        # Jitter actually fired: sleeps sit strictly above the
        # jitter-free schedule (0.01 then 0.02).
        assert first[str(query_a)] != [0.01, 0.02]

    def test_jitter_differs_across_queries(self, inner):
        # Content keying still decorrelates retry storms: two different
        # queries against the same database draw different jitter.
        policy = RetryPolicy(backoff_base_s=0.01, jitter=1.0)
        first = policy.backoff_s(inner.name, "query one", 0)
        second = policy.backoff_s(inner.name, "query two", 0)
        assert first != second


class TestPostHocTimeout:
    def test_slow_local_probe_is_flagged_not_lost(self, inner, query):
        metrics = MetricsRegistry()
        resilient = wrap(
            inner,
            metrics=metrics,
            policy=RetryPolicy(timeout_s=1e-9),
        )
        value = resilient.probe_relevancy(query)
        assert value == inner.relevancy(query)
        assert metrics.snapshot()["counters"]["probe_slow"] == 1
