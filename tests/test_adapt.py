"""Tests for the online-adaptation subsystem (``repro.adapt``).

Covers the PR's acceptance criteria:

* observation capture on both execution paths, sliding-window
  semantics, drift detection with sample floors and degenerate inputs;
* the coordinator's cadence, auto-swap policy and post-swap
  re-baselining;
* zero-downtime hot swap: no-op swaps are fingerprint-identical and
  bit-identical to the in-process path, changed-model swaps propagate
  to live pool workers, in-flight requests finish under the old model,
  lazily-reloaded workers refuse-and-redispatch transparently, and a
  swap-under-load stress (including a SIGKILL across the swap
  boundary) loses zero requests and double-answers none;
* the selection cache keys entries by model fingerprint (satellite
  regression) and the adapt instruments are always pre-registered;
* the ``bench-drift`` corpus machinery and document validation.
"""

import threading

import pytest

from repro.adapt import (
    AdaptationConfig,
    DriftDetector,
    EDAccumulator,
    ModelSwapCoordinator,
    Observation,
    ObservationSink,
)
from repro.core.training import ErrorModel
from repro.exceptions import ConfigurationError
from repro.service.metrics import MetricsRegistry
from repro.service.pool import StaleRequestError
from repro.service.server import MetasearchService, ServiceConfig
from repro.service.resilience import RetryPolicy

from tests.test_service_pool import (
    make_pool,
    make_request,
    make_service,
)


def observation(database, error, query_type=None, estimate=1.0):
    from repro.core.query_types import QueryType

    return Observation(
        database=database,
        query_type=query_type or QueryType(num_terms=2, estimate_band=1),
        estimate=estimate,
        actual=estimate * (1.0 + error),
        error=error,
    )


def adapt_service(trained_metasearcher, auto_swap=False, **adapt_kwargs):
    config = ServiceConfig(
        max_workers=2,
        batch_size=2,
        retry=RetryPolicy(backoff_base_s=0.0),
        cache_enabled=False,
        pool_workers=0,
        adapt=True,
        adapt_auto_swap=auto_swap,
        **adapt_kwargs,
    )
    return MetasearchService(trained_metasearcher, config=config)


def shifted_model(error_model, databases, error=-1.0, samples=64):
    """A copy of *error_model* with extra mass at *error* for *databases*."""
    from repro.core.query_types import QueryType

    model = ErrorModel.from_state_dict(error_model.state_dict())
    for database in databases:
        for i in range(samples):
            model.observe(
                database, QueryType(2, i % 3), error + (i % 5) * 1e-3
            )
    return model


class TestObservationSink:
    def test_window_evicts_oldest(self):
        sink = ObservationSink(window=3)
        for i in range(5):
            sink.record(observation("db", float(i)))
        assert sink.count("db") == 3
        assert [o.error for o in sink.observations("db")] == [2.0, 3.0, 4.0]
        assert sink.total == 5  # lifetime, not windowed

    def test_clear_keeps_lifetime_total(self):
        sink = ObservationSink(window=8)
        sink.record(observation("a", 0.1))
        sink.record(observation("b", 0.2))
        sink.clear()
        assert sink.databases() == []
        assert sink.count("a") == 0
        assert sink.total == 2

    def test_records_increment_metric(self):
        metrics = MetricsRegistry()
        sink = ObservationSink(window=4, metrics=metrics)
        sink.record(observation("a", 0.0))
        sink.record(observation("a", 0.0))
        assert (
            metrics.snapshot()["counters"]["adapt_observations_total"] == 2
        )

    def test_rejects_degenerate_window(self):
        with pytest.raises(ConfigurationError):
            ObservationSink(window=0)


class TestEDAccumulator:
    def test_recent_ed_holds_windowed_samples_only(
        self, trained_pipeline
    ):
        sink = ObservationSink(window=16)
        accumulator = EDAccumulator(trained_pipeline["error_model"], sink)
        for _ in range(5):
            sink.record(observation("onco", -0.5))
        recent = accumulator.recent_ed("onco")
        assert recent.sample_count == 5
        assert accumulator.recent_ed("cardio").sample_count == 0

    def test_empty_window_refresh_is_bit_identical(self, trained_pipeline):
        baseline = trained_pipeline["error_model"]
        accumulator = EDAccumulator(baseline, ObservationSink(window=16))
        assert accumulator.refreshed_state() == baseline.state_dict()

    def test_refresh_layers_window_onto_baseline(self, trained_pipeline):
        baseline = trained_pipeline["error_model"]
        sink = ObservationSink(window=32)
        accumulator = EDAccumulator(baseline, sink)
        before = baseline.database_ed("onco").sample_count
        for _ in range(7):
            sink.record(observation("onco", -1.0))
        refreshed = accumulator.refreshed_model()
        assert refreshed.database_ed("onco").sample_count == before + 7
        # The live baseline object is untouched.
        assert baseline.database_ed("onco").sample_count == before

    def test_later_baseline_mutations_do_not_leak(self, trained_pipeline):
        from repro.core.query_types import QueryType

        baseline = ErrorModel.from_state_dict(
            trained_pipeline["error_model"].state_dict()
        )
        accumulator = EDAccumulator(baseline, ObservationSink(window=8))
        baseline.observe("onco", QueryType(2, 1), 5.0)
        assert accumulator.refreshed_state() != baseline.state_dict()


class TestDriftDetector:
    def make(self, baseline, sink, **kwargs):
        accumulator = EDAccumulator(baseline, sink)
        kwargs.setdefault("min_samples", 8)
        kwargs.setdefault("significance", 0.01)
        return DriftDetector(baseline, accumulator, **kwargs)

    def test_below_sample_floor_never_flags(self, trained_pipeline):
        sink = ObservationSink(window=64)
        detector = self.make(trained_pipeline["error_model"], sink)
        for _ in range(7):  # one below the floor of 8
            sink.record(observation("onco", 50.0))
        status = detector.check_database("onco")
        assert not status.drifted
        assert status.p_value == 1.0

    def test_unknown_database_never_flags(self, trained_pipeline):
        sink = ObservationSink(window=64)
        detector = self.make(trained_pipeline["error_model"], sink)
        for _ in range(30):
            sink.record(observation("never-trained", 50.0))
        status = detector.check_database("never-trained")
        assert not status.drifted

    def test_shifted_errors_flag_matching_errors_do_not(
        self, trained_pipeline
    ):
        baseline = trained_pipeline["error_model"]
        sink = ObservationSink(window=128)
        detector = self.make(baseline, sink)
        # Drifted: all the mass far outside the trained distribution.
        for _ in range(60):
            sink.record(observation("onco", 120.0))
        assert detector.check_database("onco").drifted
        # Stationary: replay errors drawn from the trained ED itself.
        reference = baseline.database_ed("cardio").histogram
        for bin_index, count in enumerate(reference.counts):
            midpoint = (
                reference.edges[bin_index] + reference.edges[bin_index + 1]
            ) / 2.0
            for _ in range(int(count)):
                sink.record(observation("cardio", midpoint))
        status = detector.check_database("cardio")
        assert not status.drifted
        assert "cardio" in [
            name for name, s in detector.check().items()
        ]

    def test_validates_parameters(self, trained_pipeline):
        accumulator = EDAccumulator(
            trained_pipeline["error_model"], ObservationSink()
        )
        with pytest.raises(ConfigurationError):
            DriftDetector(
                trained_pipeline["error_model"],
                accumulator,
                significance=1.5,
            )
        with pytest.raises(ConfigurationError):
            DriftDetector(
                trained_pipeline["error_model"],
                accumulator,
                min_samples=0,
            )


class TestCoordinator:
    def make(self, baseline, auto_swap=False, swap=None, **kwargs):
        metrics = MetricsRegistry()
        sink = ObservationSink(window=64, metrics=metrics)
        swaps = []

        def default_swap(model):
            swaps.append(model)
            return f"fp-{len(swaps)}"

        kwargs.setdefault("check_every", 10)
        kwargs.setdefault("min_samples", 8)
        kwargs.setdefault("significance", 0.01)
        coordinator = ModelSwapCoordinator(
            baseline,
            sink,
            AdaptationConfig(auto_swap=auto_swap, **kwargs),
            swap=swap or default_swap,
            metrics=metrics,
        )
        return coordinator, sink, swaps, metrics

    def test_checks_run_on_observation_cadence(self, trained_pipeline):
        coordinator, sink, _, metrics = self.make(
            trained_pipeline["error_model"]
        )
        for i in range(9):
            sink.record(observation("onco", 0.0))
            assert coordinator.maybe_step() is None, i
        sink.record(observation("onco", 0.0))
        assert coordinator.maybe_step() is not None
        assert coordinator.checks == 1
        assert metrics.snapshot()["counters"]["adapt_drift_checks"] == 1
        # The cadence resets: the very next observation does not check.
        sink.record(observation("onco", 0.0))
        assert coordinator.maybe_step() is None

    def test_auto_swap_fires_and_rebaselines(self, trained_pipeline):
        coordinator, sink, swaps, metrics = self.make(
            trained_pipeline["error_model"], auto_swap=True
        )
        for _ in range(10):
            sink.record(observation("onco", 120.0))
        coordinator.maybe_step()
        assert len(swaps) == 1
        assert coordinator.swaps[0].fingerprint == "fp-1"
        assert "onco" in coordinator.swaps[0].drifted
        # Post-swap: windows cleared, status cleared, and the swapped
        # evidence no longer counts as drift against the new baseline.
        assert sink.databases() == []
        assert coordinator.drifted == ()
        assert coordinator.check_now() is None
        assert (
            metrics.snapshot()["counters"]["adapt_drift_flagged"] >= 1
        )

    def test_observe_and_flag_without_auto_swap(self, trained_pipeline):
        coordinator, sink, swaps, _ = self.make(
            trained_pipeline["error_model"], auto_swap=False
        )
        for _ in range(10):
            sink.record(observation("onco", 120.0))
        coordinator.maybe_step()
        assert coordinator.drifted == ("onco",)
        assert swaps == []
        report = coordinator.swap_now()  # the operator's manual path
        assert len(swaps) == 1
        assert report.drifted == ("onco",)
        assert report.observations_used == 10

    def test_snapshot_is_jsonable(self, trained_pipeline):
        import json

        coordinator, sink, _, _ = self.make(
            trained_pipeline["error_model"]
        )
        for _ in range(10):
            sink.record(observation("onco", 120.0))
        coordinator.maybe_step()
        snapshot = coordinator.snapshot()
        json.dumps(snapshot)
        assert snapshot["checks"] == 1
        assert snapshot["drifted"] == ["onco"]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptationConfig(window=0)
        with pytest.raises(ConfigurationError):
            AdaptationConfig(check_every=0)
        with pytest.raises(ConfigurationError):
            AdaptationConfig(significance=0.0)
        with pytest.raises(ConfigurationError):
            AdaptationConfig(min_samples=0)


class TestServiceObservation:
    def test_serving_fills_the_sink(
        self, trained_metasearcher, health_queries
    ):
        with adapt_service(trained_metasearcher) as service:
            for query in health_queries[40:46]:
                service.serve(query, k=2, certainty=1.0)
            sink = service.observations
            counters = service.metrics.snapshot()["counters"]
            assert sink is not None
            assert sink.total > 0
            assert counters["adapt_observations_total"] == sink.total
            assert set(sink.databases()) <= {
                db.name for db in trained_metasearcher.mediator
            }
            snapshot = service.snapshot()
            assert "adaptation" in snapshot
            assert (
                snapshot["adaptation"]["observations_total"] == sink.total
            )

    def test_pool_path_observes_through_parent(
        self, trained_metasearcher, health_queries
    ):
        config = ServiceConfig(
            max_workers=2,
            batch_size=2,
            retry=RetryPolicy(backoff_base_s=0.0),
            cache_enabled=False,
            pool_workers=1,
            adapt=True,
        )
        with MetasearchService(
            trained_metasearcher, config=config
        ) as service:
            for query in health_queries[40:44]:
                service.serve(query, k=2, certainty=1.0)
            counters = service.metrics.snapshot()["counters"]
            assert counters["pool_dispatch"] == 4
            assert service.observations.total > 0

    def test_adapt_off_has_no_loop(self, trained_metasearcher):
        # Pin adapt off explicitly so the REPRO_ADAPT CI knob cannot
        # flip this service's behaviour out from under the test.
        config = ServiceConfig(
            max_workers=4,
            batch_size=2,
            retry=RetryPolicy(backoff_base_s=0.0),
            cache_enabled=False,
            pool_workers=0,
            adapt=False,
        )
        with make_service(trained_metasearcher, config=config) as service:
            assert service.observations is None
            assert service.adaptation is None
            assert "adaptation" not in service.snapshot()

    def test_env_knob_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPT", "1")
        assert ServiceConfig().adapt is True
        monkeypatch.setenv("REPRO_ADAPT", "0")
        assert ServiceConfig().adapt is False
        monkeypatch.delenv("REPRO_ADAPT")
        assert ServiceConfig().adapt is False
        assert ServiceConfig(adapt=True).adapt is True
        monkeypatch.setenv("REPRO_ADAPT", "maybe")
        with pytest.raises(ConfigurationError):
            ServiceConfig()


class TestHotSwap:
    def test_noop_swap_keeps_fingerprint_and_answers(
        self, trained_metasearcher, health_queries
    ):
        queries = health_queries[40:46]
        with make_service(trained_metasearcher) as reference_service:
            reference = [
                reference_service.serve(q, k=2, certainty=1.0)
                for q in queries
            ]
        with adapt_service(trained_metasearcher) as service:
            before = service.state_fingerprint
            first = [
                service.serve(q, k=2, certainty=1.0) for q in queries[:3]
            ]
            same_model = ErrorModel.from_state_dict(
                trained_metasearcher.selector.error_model.state_dict()
            )
            assert service.swap_model(same_model) == before
            assert service.state_fingerprint == before
            second = [
                service.serve(q, k=2, certainty=1.0) for q in queries[3:]
            ]
            counters = service.metrics.snapshot()["counters"]
        for expected, actual in zip(reference, first + second):
            assert actual.selected == expected.selected
            assert actual.probe_order == expected.probe_order
            assert abs(actual.certainty - expected.certainty) <= 1e-9
        assert counters["adapt_swaps_total"] == 1

    def test_changed_model_swap_changes_fingerprint(
        self, trained_metasearcher, health_queries
    ):
        with adapt_service(trained_metasearcher) as service:
            before = service.state_fingerprint
            changed = shifted_model(
                trained_metasearcher.selector.error_model, ["onco"]
            )
            after = service.swap_model(changed)
            assert after != before
            assert service.state_fingerprint == after
            answer = service.serve(health_queries[40], k=2, certainty=1.0)
            assert len(answer.selected) == 2
            histograms = service.metrics.snapshot()["histograms"]
            assert histograms["adapt_swap_ms"]["count"] == 1

    def test_pool_update_state_reloads_idle_workers(
        self, trained_metasearcher, health_queries
    ):
        pool = make_pool(trained_metasearcher, workers=2)
        try:
            query = health_queries[40]
            assert pool.execute(
                make_request(trained_metasearcher, pool, query)
            ).probes >= 0
            old_request = make_request(trained_metasearcher, pool, query)
            from repro.service.worker import refresh_worker_blob

            changed = shifted_model(
                trained_metasearcher.selector.error_model, ["onco"]
            )
            new_blob = refresh_worker_blob(
                pool.blob, changed.state_dict()
            )
            assert pool.update_state(new_blob) == 2
            assert pool.fingerprint == new_blob.fingerprint
            # Requests built against the new state run fine.
            assert pool.execute(
                make_request(trained_metasearcher, pool, query)
            ).probes >= 0
            # A request still carrying the old fingerprint is refused
            # with the retryable stale error, and the worker survives.
            with pytest.raises(StaleRequestError):
                pool.execute(old_request)
            assert pool.execute(
                make_request(trained_metasearcher, pool, query)
            ).probes >= 0
        finally:
            pool.shutdown()

    def test_noop_update_state_reloads_nothing(self, trained_metasearcher):
        pool = make_pool(trained_metasearcher, workers=1)
        try:
            assert pool.update_state(pool.blob) == 0
        finally:
            pool.shutdown()

    def test_busy_worker_reloads_lazily(
        self, trained_metasearcher, health_queries
    ):
        """A worker that misses a swap (busy) is reloaded on its next
        dispatch — refusal, reload, re-dispatch, all invisible to the
        caller — and the refusal is metrics-visible."""
        from repro.core.probing import MediatorProber
        from repro.service.pool import SelectionPool
        from repro.service.worker import build_worker_blob, refresh_worker_blob

        metrics = MetricsRegistry()
        gate = threading.Event()
        release = threading.Event()
        selector = trained_metasearcher.selector
        inner = MediatorProber(selector.mediator, selector.definition)

        def gated_probe(query, indices):
            gate.set()
            release.wait(timeout=10.0)
            return inner.probe_batch(query, indices)

        pool = SelectionPool(
            build_worker_blob(trained_metasearcher),
            prober=gated_probe,
            workers=2,
            metrics=metrics,
        )
        try:
            query = next(
                q
                for q in health_queries[40:]
                if trained_metasearcher.select_without_probing(
                    q, k=2
                ).expected_correctness
                < 0.999
            )
            results = []

            def run_busy():
                results.append(
                    pool.execute(
                        make_request(trained_metasearcher, pool, query)
                    )
                )

            busy = threading.Thread(target=run_busy)
            busy.start()
            assert gate.wait(timeout=10.0)  # worker A is now mid-request
            changed = shifted_model(
                trained_metasearcher.selector.error_model, ["onco"]
            )
            new_blob = refresh_worker_blob(pool.blob, changed.state_dict())
            # Only the idle worker B reloads; A is out with the old blob.
            assert pool.update_state(new_blob) == 1
            release.set()
            busy.join(timeout=10.0)
            assert results and results[0].probes >= 0  # finished on old model
            # Serve through both workers: whichever still holds the old
            # blob refuses once, reloads, and re-serves transparently.
            for _ in range(4):
                result = pool.execute(
                    make_request(trained_metasearcher, pool, query)
                )
                assert result.probes >= 0
            counters = metrics.snapshot()["counters"]
            assert counters["pool_stale_refusals"] == 1
            assert metrics.counter("pool_worker_restarts").value == 0
        finally:
            release.set()
            pool.shutdown()

    def test_service_swap_with_pool_under_load_loses_nothing(
        self, trained_metasearcher, health_queries
    ):
        """Hot swap + SIGKILL across the swap boundary: every request
        answered exactly once, through the pool or the fallback."""
        import os
        import signal
        import time

        config = ServiceConfig(
            max_workers=4,
            batch_size=2,
            retry=RetryPolicy(backoff_base_s=0.0),
            cache_enabled=False,
            pool_workers=2,
            adapt=True,
        )
        queries = [health_queries[40 + i % 16] for i in range(48)]
        answers = {}
        errors = []
        base_model = trained_metasearcher.selector.error_model
        with MetasearchService(
            trained_metasearcher, config=config
        ) as service:
            variant = shifted_model(base_model, ["onco", "cardio"])
            same = ErrorModel.from_state_dict(base_model.state_dict())
            swap_targets = [variant, same, variant]
            started = threading.Barrier(4)

            def client(offset):
                started.wait(timeout=10.0)
                for i in range(offset, len(queries), 3):
                    try:
                        answers[i] = service.serve(
                            queries[i], k=2, certainty=1.0
                        )
                    except Exception as error:  # pragma: no cover
                        errors.append((i, error))

            threads = [
                threading.Thread(target=client, args=(o,)) for o in range(3)
            ]
            for thread in threads:
                thread.start()
            started.wait(timeout=10.0)
            for index, model in enumerate(swap_targets):
                service.swap_model(model)
                if index == 0:
                    # worker_pids() is transiently empty while a busy
                    # worker is mid-replacement; wait for a live one.
                    deadline = time.monotonic() + 10.0
                    while not (pids := service.pool.worker_pids()):
                        assert time.monotonic() < deadline
                        time.sleep(0.01)
                    os.kill(pids[0], signal.SIGKILL)
            for thread in threads:
                thread.join(timeout=60.0)
            counters = service.metrics.snapshot()["counters"]
        assert errors == []
        assert sorted(answers) == list(range(len(queries)))  # exactly once
        assert all(len(a.selected) == 2 for a in answers.values())
        assert counters["adapt_swaps_total"] == 3
        # The killed worker was replaced, not silently lost.
        assert counters["pool_worker_restarts"] >= 1


class TestCacheFingerprinting:
    def test_cache_entries_do_not_survive_model_swaps(
        self, trained_metasearcher, health_queries
    ):
        """Satellite regression: a cached selection made under the old
        model must not be served after a swap installs a new one."""
        config = ServiceConfig(
            max_workers=2,
            batch_size=2,
            retry=RetryPolicy(backoff_base_s=0.0),
            cache_enabled=True,
            cache_ttl_s=3600.0,
            pool_workers=0,
            adapt=True,
        )
        query = health_queries[40]
        with MetasearchService(
            trained_metasearcher, config=config
        ) as service:
            miss = service.serve(query, k=2, certainty=1.0)
            hit = service.serve(query, k=2, certainty=1.0)
            assert not miss.cache_hit and hit.cache_hit
            service.swap_model(
                shifted_model(
                    trained_metasearcher.selector.error_model,
                    ["onco", "cardio", "broad", "news"],
                )
            )
            after = service.serve(query, k=2, certainty=1.0)
            # Fingerprint-keyed cache: the old entry is unreachable.
            assert not after.cache_hit
            again = service.serve(query, k=2, certainty=1.0)
            assert again.cache_hit
            assert again.selected == after.selected


class TestInstrumentRegistration:
    ADAPT_COUNTERS = (
        "adapt_observations_total",
        "adapt_drift_checks",
        "adapt_drift_flagged",
        "adapt_swaps_total",
        "pool_stale_refusals",
    )

    @pytest.mark.parametrize("adapt", [False, True])
    def test_adapt_instruments_always_registered(
        self, trained_metasearcher, adapt
    ):
        config = ServiceConfig(
            max_workers=1,
            cache_enabled=False,
            pool_workers=0,
            adapt=adapt,
        )
        with MetasearchService(
            trained_metasearcher, config=config
        ) as service:
            snapshot = service.metrics.snapshot()
        for name in self.ADAPT_COUNTERS:
            assert name in snapshot["counters"], name
            assert snapshot["counters"][name] == 0
        assert "adapt_swap_ms" in snapshot["histograms"]


class TestBenchDrift:
    def test_drifted_specs_rotate_a_fraction(self):
        from repro.adapt.bench import BenchDriftConfig, _drifted_specs
        from repro.corpus.collections import testbed_specs
        from repro.experiments.setup import PaperSetupConfig

        setup = PaperSetupConfig(scale=0.05, n_train=10, n_test=10)
        config = BenchDriftConfig(drift_fraction=0.5)
        original = testbed_specs(setup.scale)
        drifted = _drifted_specs(config, setup)
        assert [s.name for s in drifted] == [s.name for s in original]
        assert [s.size for s in drifted] == [s.size for s in original]
        changed = [
            (before, after)
            for before, after in zip(original, drifted)
            if after.seed != before.seed
        ]
        assert len(changed) == round(len(original) * 0.5)
        for before, after in changed:
            assert after.topic_mixture != before.topic_mixture
        # Deterministic: the same config drifts the same databases.
        assert [s.seed for s in _drifted_specs(config, setup)] == [
            s.seed for s in drifted
        ]

    def test_phase_streams_are_permutations(self):
        from repro.adapt.bench import BenchDriftConfig, _phase_stream

        config = BenchDriftConfig()
        queries = [("q", str(i)) for i in range(20)]
        streams = [_phase_stream(queries, i, config) for i in range(3)]
        for stream in streams:
            assert sorted(stream) == sorted(queries)
        assert streams[0] != streams[1] != streams[2]

    def test_validate_flags_broken_documents(self):
        from repro.adapt.bench import validate_bench_drift

        assert validate_bench_drift({}) != []

        def leg(lost=0, swaps=1, fp_final="b"):
            return {
                "phases": {
                    p: {"queries": 1, "answered": 1 - lost}
                    for p in ("pre", "post_early", "post_late")
                },
                "fingerprints": {"initial": "a", "final": fp_final},
                "drift": {"swaps": swaps},
                "lost_requests": lost,
            }

        good = {
            "schema_version": 1,
            "benchmark": "bench-drift",
            "config": {},
            "phases": ["pre", "post_early", "post_late"],
            "runs": {
                "adapted": leg(),
                "frozen": leg(swaps=0, fp_final="a"),
            },
            "derived": {
                "drift_detected": True,
                "swaps": 1,
                "model_changed": True,
                "post_late_quality_delta": 0.1,
                "post_late_calibration_delta": 0.05,
                "adaptation_recovers": True,
            },
        }
        assert validate_bench_drift(good) == []
        lossy = {**good, "runs": {**good["runs"], "adapted": leg(lost=1)}}
        assert any("lost" in f for f in validate_bench_drift(lossy))
        frozen_swapped = {
            **good,
            "runs": {**good["runs"], "frozen": leg(swaps=2, fp_final="c")},
        }
        assert len(validate_bench_drift(frozen_swapped)) >= 2
        no_recovery = {
            **good,
            "derived": {**good["derived"], "adaptation_recovers": False},
        }
        assert any(
            "recovery" in f for f in validate_bench_drift(no_recovery)
        )

    def test_config_validation(self):
        from repro.adapt.bench import BenchDriftConfig

        with pytest.raises(ConfigurationError):
            BenchDriftConfig(queries_per_phase=0)
        with pytest.raises(ConfigurationError):
            BenchDriftConfig(drift_fraction=0.0)
        with pytest.raises(ConfigurationError):
            BenchDriftConfig(drift_fraction=1.5)
