"""RD-based database selection (paper §3.3, §6.2).

The selector turns a query into one RD per database (estimate → query
type → ED → RD) and returns the k-set with the highest expected
correctness — no probing involved. It is both the paper's "RD-based, no
probing" method and the starting state of the adaptive-probing loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.core.backend import ArrayBackend, get_backend
from repro.core.query_types import QueryTypeClassifier
from repro.core.relevancy import RelevancyDistribution, derive_rd, derive_rds
from repro.core.topk import CorrectnessMetric, TopKComputer
from repro.core.training import ErrorModel
from repro.exceptions import SelectionError
from repro.hiddenweb.database import RelevancyDefinition
from repro.hiddenweb.mediator import Mediator
from repro.stats.distribution import DiscreteDistribution
from repro.summaries.estimators import RelevancyEstimator
from repro.summaries.summary import ContentSummary
from repro.types import Query

__all__ = ["SelectionResult", "RDBasedSelector"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one selection: the set, its certainty, and the RDs."""

    indices: tuple[int, ...]
    names: tuple[str, ...]
    expected_correctness: float
    computer: TopKComputer

    @property
    def k(self) -> int:
        """Size of the answer set."""
        return len(self.indices)


class RDBasedSelector:
    """Probability-aware database selection.

    Parameters
    ----------
    mediator:
        The mediated databases (selection itself never probes them).
    summaries:
        Per-database content summaries.
    estimator:
        Point estimator r̂ whose errors the model corrects.
    error_model:
        Trained per-(database, query-type) error distributions.
    classifier:
        The query-type decision tree (must match the one used to train).
    definition:
        Relevancy definition for derived RDs.
    """

    def __init__(
        self,
        mediator: Mediator,
        summaries: Mapping[str, ContentSummary],
        estimator: RelevancyEstimator,
        error_model: ErrorModel,
        classifier: QueryTypeClassifier | None = None,
        definition: RelevancyDefinition = RelevancyDefinition.DOCUMENT_FREQUENCY,
    ) -> None:
        missing = [db.name for db in mediator if db.name not in summaries]
        if missing:
            raise SelectionError(f"missing summaries for databases: {missing}")
        self._mediator = mediator
        self._summaries = dict(summaries)
        self._estimator = estimator
        self._error_model = error_model
        self._classifier = classifier or QueryTypeClassifier()
        self._definition = definition

    @property
    def mediator(self) -> Mediator:
        """The mediated databases."""
        return self._mediator

    @property
    def definition(self) -> RelevancyDefinition:
        """Relevancy definition the selector operates under."""
        return self._definition

    @property
    def summaries(self) -> Mapping[str, ContentSummary]:
        """Per-database content summaries (read-only view)."""
        return dict(self._summaries)

    @property
    def estimator(self) -> RelevancyEstimator:
        """The point estimator r̂."""
        return self._estimator

    @property
    def error_model(self) -> ErrorModel:
        """The trained error model."""
        return self._error_model

    @property
    def classifier(self) -> QueryTypeClassifier:
        """The query-type decision tree."""
        return self._classifier

    # -- RD construction ----------------------------------------------------------

    def estimate(self, database_name: str, query: Query) -> float:
        """r̂(db, q) for one database."""
        return self._estimator.estimate(self._summaries[database_name], query)

    def build_rd(self, database_name: str, query: Query) -> RelevancyDistribution:
        """The relevancy distribution of one database for *query*.

        Short-circuits: an exact summary with a zero-df query term proves
        r = 0 (conjunctive semantics), yielding an impulse without any
        ED. A database with no usable ED falls back to trusting the
        estimate (impulse at r̂) — the behaviour of a plain estimator.
        """
        summary = self._summaries[database_name]
        if self._is_certain_zero(summary, query):
            return DiscreteDistribution.impulse(0.0)
        estimate = self._estimator.estimate(summary, query)
        query_type = self._classifier.classify(query, estimate)
        ed = self._error_model.lookup(database_name, query_type)
        if ed is None:
            return DiscreteDistribution.impulse(self._point_value(estimate))
        return derive_rd(
            estimate,
            ed,
            definition=self._definition,
            estimate_floor=self._error_model.estimate_floor,
        )

    def build_rds(
        self,
        query: Query,
        backend: "str | ArrayBackend | None" = None,
        indices: "Sequence[int] | None" = None,
    ) -> list[RelevancyDistribution]:
        """RDs of every database, in mediation order.

        On a vectorized backend the ED→RD derivations of all databases
        run through one batched :func:`~repro.core.relevancy.derive_rds`
        kernel; the per-database short-circuits (certain zero, no usable
        ED) are applied identically first, so the result matches the
        :meth:`build_rd` loop bitwise on every backend.

        ``indices`` restricts construction to those mediation indices:
        the other slots are filled with one shared zero impulse so the
        list keeps its length-n index math, but no summary lookup, ED
        lookup, or derivation runs for them. This is what makes a hard
        candidate cut (``APro(... keep=...)``, the prefilter tier)
        sublinear per query — the caller guarantees the placeholder
        slots are never consulted.
        """
        resolved = get_backend(backend)
        wanted = None if indices is None else {int(i) for i in indices}
        if not resolved.vectorized:
            if wanted is None:
                return [
                    self.build_rd(db.name, query) for db in self._mediator
                ]
            zero = DiscreteDistribution.impulse(0.0)
            return [
                self.build_rd(db.name, query) if idx in wanted else zero
                for idx, db in enumerate(self._mediator)
            ]
        rds: list[RelevancyDistribution | None] = [None] * len(self._mediator)
        pending: list[tuple[int, float, object]] = []
        skipped = (
            None if wanted is None else DiscreteDistribution.impulse(0.0)
        )
        for idx, db in enumerate(self._mediator):
            if wanted is not None and idx not in wanted:
                rds[idx] = skipped
                continue
            summary = self._summaries[db.name]
            if self._is_certain_zero(summary, query):
                rds[idx] = DiscreteDistribution.impulse(0.0)
                continue
            estimate = self._estimator.estimate(summary, query)
            query_type = self._classifier.classify(query, estimate)
            ed = self._error_model.lookup(db.name, query_type)
            if ed is None:
                rds[idx] = DiscreteDistribution.impulse(
                    self._point_value(estimate)
                )
                continue
            pending.append((idx, estimate, ed))
        if pending:
            derived = derive_rds(
                [estimate for _idx, estimate, _ed in pending],
                [ed for _idx, _estimate, ed in pending],
                definition=self._definition,
                estimate_floor=self._error_model.estimate_floor,
                backend=resolved,
            )
            for (idx, _estimate, _ed), rd in zip(pending, derived):
                rds[idx] = rd
        return rds

    def _point_value(self, estimate: float) -> float:
        if self._definition is RelevancyDefinition.DOCUMENT_FREQUENCY:
            return float(max(0, round(estimate)))
        return min(1.0, max(0.0, estimate))

    def _is_certain_zero(self, summary: ContentSummary, query: Query) -> bool:
        if self._definition is not RelevancyDefinition.DOCUMENT_FREQUENCY:
            return False
        if not summary.is_exact:
            return False
        return any(
            summary.document_frequency(term) == 0 for term in query.terms
        )

    # -- selection ---------------------------------------------------------------

    def select(
        self,
        query: Query,
        k: int,
        metric: CorrectnessMetric = CorrectnessMetric.ABSOLUTE,
    ) -> SelectionResult:
        """Select the k-set with maximal expected correctness (no probes)."""
        computer = TopKComputer(self.build_rds(query), k)
        indices, expected = computer.best_set(metric)
        return SelectionResult(
            indices=indices,
            names=tuple(self._mediator[i].name for i in indices),
            expected_correctness=expected,
            computer=computer,
        )
