"""The adaptive probing algorithm APro (paper §5, Fig. 10/11).

APro starts from the RD-based selection; while no k-set reaches the
user-required expected correctness t, it probes one more database (order
chosen by a :class:`~repro.core.policies.ProbePolicy`), collapses that
database's RD to an impulse at the observed relevancy, and re-evaluates.
Termination is guaranteed: once every database is probed, the best set's
expected correctness is exactly 1.

The returned :class:`ProbeSession` records the full trajectory — the
best set and its certainty after every probe — which is what the paper's
Fig. 16 plots.
"""

from __future__ import annotations

import inspect
from collections.abc import Sequence
from dataclasses import dataclass, field
from math import comb
from typing import Protocol, runtime_checkable

from repro.core.backend import ArrayBackend
from repro.core.deadline import Deadline
from repro.core.policies import GreedyUsefulnessPolicy, ProbePolicy
from repro.core.pruning import prunable_mask, support_bounds
from repro.core.relevancy import RelevancyDistribution
from repro.core.selection import RDBasedSelector
from repro.core.topk import CorrectnessMetric, TopKComputer
from repro.exceptions import ProbingError
from repro.hiddenweb.database import RelevancyDefinition
from repro.hiddenweb.mediator import Mediator
from repro.types import Query

__all__ = [
    "ProbeRecord",
    "ProbeSession",
    "BatchProber",
    "MediatorProber",
    "APro",
]


@runtime_checkable
class BatchProber(Protocol):
    """Dispatches one round of probes and returns the observations.

    APro decides *which* databases to probe; the prober decides *how*
    the probes are executed (inline, via a thread pool, with retries,
    against fault-injected backends, ...). Observations must be returned
    in the same order as *indices* — APro applies them in that order, so
    belief updates stay deterministic regardless of execution order.
    """

    def probe_batch(
        self, query: Query, indices: Sequence[int]
    ) -> Sequence[float]:
        """Probe the given mediation-order indices for *query*."""
        ...


class MediatorProber:
    """The default prober: synchronous, in-process, fault-free probes."""

    def __init__(
        self, mediator: Mediator, definition: RelevancyDefinition
    ) -> None:
        self._mediator = mediator
        self._definition = definition

    def probe_batch(
        self, query: Query, indices: Sequence[int]
    ) -> list[float]:
        """Probe each database in order, one at a time."""
        return [
            self._mediator[i].probe_relevancy(query, self._definition)
            for i in indices
        ]


@dataclass(frozen=True, slots=True)
class ProbeRecord:
    """One executed probe: which database and what it reported."""

    database: str
    index: int
    observed: float


@dataclass(frozen=True)
class TrajectoryPoint:
    """Best answer set and its certainty after a number of probes."""

    probes: int
    names: tuple[str, ...]
    expected_correctness: float


@dataclass
class ProbeSession:
    """Full record of one APro run for a query.

    ``deadline_expired`` is set when a wall-clock :class:`Deadline`
    stopped the loop before the requested certainty was reached — the
    final trajectory point is then the best set known at expiry, with
    the certainty actually achieved.

    ``pruned_databases`` counts the databases the run excluded from the
    belief machinery — provably-out candidates under bound pruning
    (``APro(prune=True)``), plus anything outside an explicit ``keep``
    restriction. ``0`` on the classic full-width path.
    """

    query: Query
    k: int
    metric: CorrectnessMetric
    threshold: float
    records: list[ProbeRecord] = field(default_factory=list)
    trajectory: list[TrajectoryPoint] = field(default_factory=list)
    deadline_expired: bool = False
    pruned_databases: int = 0

    @property
    def num_probes(self) -> int:
        """Total probes issued."""
        return len(self.records)

    def total_cost(self, costs: Sequence[float] | None = None) -> float:
        """Weighted probing cost of the session.

        With *costs* (per-database, mediation order) each probe is
        charged its database's cost; without, every probe costs 1 — the
        paper's uniform-cost assumption (§5.2).
        """
        if costs is None:
            return float(self.num_probes)
        return float(sum(costs[record.index] for record in self.records))

    @property
    def final(self) -> TrajectoryPoint:
        """The returned answer (last trajectory point)."""
        return self.trajectory[-1]

    @property
    def satisfied(self) -> bool:
        """Whether the final certainty met the requested threshold."""
        return self.final.expected_correctness >= self.threshold

    def names_after(self, probes: int) -> tuple[str, ...]:
        """Best set after *probes* probes (clamped to the trajectory end).

        Fig. 16 evaluates the answer APro would return if stopped after
        a fixed number of probes; once the run has halted, later points
        repeat the final answer.
        """
        index = min(probes, len(self.trajectory) - 1)
        return self.trajectory[index].names


class APro:
    """Adaptive probing on top of an :class:`RDBasedSelector`.

    Parameters
    ----------
    selector:
        Provides RDs, the mediator and the relevancy definition.
    policy:
        Probe-order strategy (defaults to the paper's greedy policy).
    prober:
        Probe-execution strategy (defaults to synchronous in-process
        probes through the selector's mediator). The serving layer
        plugs a concurrent, fault-tolerant
        :class:`~repro.service.executor.ProbeExecutor` in here.
    incremental:
        Apply observations through
        :meth:`~repro.core.topk.TopKComputer.collapse`, reusing the
        rank structure built once per query (the default). ``False``
        rebuilds a fresh :class:`TopKComputer` after every observation —
        the pre-optimization behaviour, kept as the reference path for
        the agreement tests and the ``bench-core`` baseline. Both paths
        produce identical answer sets and probe orders (certainties
        agree to floating-point tolerance).
    backend:
        Numeric backend for RD construction and the top-k computers: a
        registry name (``"numpy"``, ``"python"``), an
        :class:`~repro.core.backend.ArrayBackend`, or ``None`` for the
        process default (``REPRO_BACKEND``). Backends are contractually
        interchangeable — identical answer sets and probe orders,
        certainty deltas ≤1e-9.
    prune:
        Run the belief machinery over bound-pruned survivors only (see
        :mod:`repro.core.pruning`): databases provably unable to enter
        the top-k are dropped before the :class:`TopKComputer` is
        built, and the certificate is re-checked after every probe (an
        out-of-support observation can weaken it, in which case the
        computer is rebuilt over the re-expanded survivor set). Same
        contract as the backends: identical selections and probe
        orders, certainty deltas ≤1e-9. ``False`` (default) is the
        classic full-width path, byte-identical to before.
    """

    def __init__(
        self,
        selector: RDBasedSelector,
        policy: ProbePolicy | None = None,
        prober: BatchProber | None = None,
        incremental: bool = True,
        backend: "str | ArrayBackend | None" = None,
        prune: bool = False,
    ) -> None:
        self._selector = selector
        self._policy = policy or GreedyUsefulnessPolicy()
        self._prober = prober or MediatorProber(
            selector.mediator, selector.definition
        )
        self._incremental = incremental
        self._backend = backend
        self._prune = prune
        self._policy_takes_deadline = _accepts_deadline(self._policy)
        self._selector_takes_backend = _accepts_backend(self._selector)
        self._selector_takes_indices = _accepts_indices(self._selector)

    @property
    def prober(self) -> BatchProber:
        """The probe-execution strategy currently in use.

        The multiprocess selection tier reads this at dispatch time so
        pool workers' probe callbacks run through exactly the prober the
        in-process path would use — including any test interposer.
        """
        return self._prober

    def run(
        self,
        query: Query,
        k: int,
        threshold: float,
        metric: CorrectnessMetric = CorrectnessMetric.ABSOLUTE,
        max_probes: int | None = None,
        force_probes: int | None = None,
        batch_size: int = 1,
        deadline: Deadline | None = None,
        keep: Sequence[int] | None = None,
    ) -> ProbeSession:
        """Execute APro for one query.

        Parameters
        ----------
        query:
            The user query.
        k:
            Answer-set size.
        threshold:
            User-required certainty t; the loop stops as soon as the
            best set's expected correctness reaches it.
        metric:
            Correctness metric being guaranteed.
        max_probes:
            Optional hard probe budget. ``0`` disables live probing
            entirely: the session is the pure no-probe RD-based
            selection from the prior (a single trajectory point,
            identical to :meth:`RDBasedSelector.select`), whatever the
            threshold — ``satisfied`` then reports whether the prior
            alone met it.
        force_probes:
            Keep probing until this many probes even after the threshold
            is met (used to trace correctness-vs-probes curves). The
            threshold still defines :attr:`ProbeSession.satisfied`.
        batch_size:
            Probes issued concurrently per round (latency extension:
            real probes are network round-trips, so issuing a few in
            parallel trades a small amount of probe efficiency for
            wall-clock latency). Each round picks the policy's best
            candidate, excludes it, and repeats on the *same* belief
            state up to this many times before observing the results.
            ``1`` (default) is the paper's strictly sequential APro.
        deadline:
            Optional wall-clock budget. The loop checks it before each
            probe round (and deadline-aware policies check it between
            candidate sweeps): once expired, probing stops and the
            session ends at the current best set with the certainty
            actually reached, ``deadline_expired`` set — never an
            exception. An already-expired deadline therefore behaves
            like ``max_probes=0``. Observations already in flight are
            still applied (they are paid for), so expiry granularity is
            one probe round.
        keep:
            Optional candidate restriction (mediation-order indices):
            only these databases take part in the run — the prefilter
            tier's top-M contract. Unlike bound pruning this *changes
            answers* (bounded, measured delta — see
            ``docs/PERFORMANCE.md``); when both are active, bound
            pruning applies within the kept set and never re-expands
            beyond it.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ProbingError(f"threshold must be in [0, 1], got {threshold}")
        if max_probes is not None and max_probes < 0:
            raise ProbingError(f"max_probes must be >= 0, got {max_probes}")
        if batch_size < 1:
            raise ProbingError(f"batch_size must be >= 1, got {batch_size}")

        mediator = self._selector.mediator
        n = len(mediator)
        pool: list[int] | None = None
        if keep is not None:
            pool = sorted({int(i) for i in keep})
            if not pool:
                raise ProbingError("keep must name at least one database")
            if pool[0] < 0 or pool[-1] >= n:
                raise ProbingError(
                    f"keep indices must be within [0, {n - 1}], got {pool}"
                )
        build_kwargs: dict[str, object] = {}
        if self._selector_takes_backend:
            build_kwargs["backend"] = self._backend
        if pool is not None and len(pool) < n and self._selector_takes_indices:
            # A hard candidate cut: skip RD construction for the
            # excluded databases entirely (the restricted loop below
            # never consults their placeholder slots).
            build_kwargs["indices"] = pool
        rds: list[RelevancyDistribution] = self._selector.build_rds(
            query, **build_kwargs
        )
        session = ProbeSession(
            query=query, k=k, metric=metric, threshold=threshold
        )
        sub, bounds = self._survivor_map(rds, k, pool)
        if sub is None:
            computer = TopKComputer(rds, k, backend=self._backend)
        else:
            computer = self._restricted_computer(rds, sub, k)
        best, score = computer.best_set(metric)
        self._record_point(session, mediator, 0, best, score, sub)

        probed: set[int] = set()
        local_of: dict[int, int] | None = (
            None if sub is None else {g: p for p, g in enumerate(sub)}
        )
        policy_kwargs: dict[str, Deadline] = (
            {"deadline": deadline}
            if deadline is not None and self._policy_takes_deadline
            else {}
        )
        while True:
            reached = score >= threshold
            want_more = (
                force_probes is not None and len(probed) < force_probes
            )
            if reached and not want_more:
                break
            if deadline is not None and deadline.expired:
                session.deadline_expired = True
                break
            if max_probes is not None and len(probed) >= max_probes:
                break
            if sub is None:
                candidates = [
                    i
                    for i in range(len(rds))
                    if i not in probed and not rds[i].is_impulse
                ]
            else:
                candidates = [
                    local
                    for local, g in enumerate(sub)
                    if g not in probed and not rds[g].is_impulse
                ]
                if not candidates and bounds is not None:
                    # Every survivor is probed but the threshold is not
                    # met: the full-width path would now probe the
                    # pruned remainder (each probe certainty-neutral
                    # in-model, but the paper's loop does issue them).
                    # Re-expand so the trajectories stay identical.
                    residual = [
                        g
                        for g in bounds[0]
                        if g not in local_of
                        and g not in probed
                        and not rds[g].is_impulse
                    ]
                    if residual:
                        sub = sorted(set(sub) | set(residual))
                        local_of = {g: p for p, g in enumerate(sub)}
                        computer = self._restricted_computer(rds, sub, k)
                        candidates = [
                            local
                            for local, g in enumerate(sub)
                            if g not in probed and not rds[g].is_impulse
                        ]
            if not candidates:
                break
            budget = len(candidates)
            if max_probes is not None:
                budget = min(budget, max_probes - len(probed))
            round_size = min(batch_size, budget)
            batch: list[int] = []
            remaining = list(candidates)
            for _ in range(round_size):
                if deadline is not None and deadline.expired:
                    break  # stop sweeping; the outer check ends the run
                choice = self._policy.choose(
                    computer, remaining, metric, threshold, **policy_kwargs
                )
                if choice not in remaining:
                    raise ProbingError(
                        f"policy chose database {choice} outside candidates"
                    )
                batch.append(choice)
                remaining.remove(choice)
            if deadline is not None and deadline.expired:
                # Expired during candidate selection: return the current
                # belief instead of paying for another probe round.
                session.deadline_expired = True
                break
            probe_targets = (
                batch if sub is None else [sub[local] for local in batch]
            )
            observations = self._prober.probe_batch(query, probe_targets)
            if len(observations) != len(batch):
                raise ProbingError(
                    f"prober returned {len(observations)} observations "
                    f"for a batch of {len(batch)}"
                )
            for choice, observed in zip(probe_targets, observations):
                session.records.append(
                    ProbeRecord(
                        database=mediator[choice].name,
                        index=choice,
                        observed=observed,
                    )
                )
                probed.add(choice)
                rds[choice] = RelevancyDistribution.impulse(observed)
                expanded = False
                if sub is not None and bounds is not None:
                    sub, expanded = self._recheck_certificate(
                        bounds, sub, k, choice, observed
                    )
                if expanded:
                    # An out-of-support observation weakened the
                    # certificate: rebuild over the re-expanded survivor
                    # set (the collapsed RDs are already impulses, so a
                    # rebuild is answer-equivalent to the collapse).
                    local_of = {g: p for p, g in enumerate(sub)}
                    computer = self._restricted_computer(rds, sub, k)
                elif sub is None:
                    if self._incremental:
                        computer = computer.collapse(choice, observed)
                    else:
                        computer = TopKComputer(
                            rds, k, backend=self._backend
                        )
                elif self._incremental:
                    computer = computer.collapse(local_of[choice], observed)
                else:
                    computer = self._restricted_computer(rds, sub, k)
                best, score = computer.best_set(metric)
                self._record_point(
                    session, mediator, len(probed), best, score, sub
                )
        session.pruned_databases = n - (n if sub is None else len(sub))
        return session

    def _survivor_map(
        self, rds, k: int, pool: list[int] | None
    ) -> tuple[list[int] | None, tuple | None]:
        """(survivor indices, mutable bound state) for this run.

        ``None`` survivors means no restriction at all — the loop then
        runs the classic full-width path untouched. The bound state is
        ``(universe, position, mins, maxs)``, carried only when pruning
        is on so the certificate can be re-checked after each probe.
        """
        n = len(rds)
        universe = list(range(n)) if pool is None else pool
        bounds = None
        survivors = universe
        if self._prune:
            mins, maxs = support_bounds([rds[g] for g in universe])
            position = {g: p for p, g in enumerate(universe)}
            bounds = (universe, position, mins, maxs)
            mask = prunable_mask(mins, maxs, k)
            survivors = [g for g, dead in zip(universe, mask) if not dead]
            survivors = _pad_survivors(survivors, universe, position, mins, k)
        if len(survivors) == n:
            return None, bounds
        return survivors, bounds

    def _restricted_computer(
        self, rds, sub: list[int], k: int
    ) -> TopKComputer:
        """A :class:`TopKComputer` over the survivor sub-list.

        ``exact_set_limit`` is pinned so the restricted ``best_set``
        takes the same exhaustive-vs-hill-climb branch the full-width
        computer would have: exhaustive iff ``comb(n_full, k)`` fits
        the default budget (then ``comb(n_sub, k)`` fits it too), the
        hill climb otherwise. This keeps the two paths' tie-breaking
        identical instead of letting the branch flip with the survivor
        count.
        """
        limit = 400 if comb(len(rds), k) <= 400 else 0
        return TopKComputer(
            [rds[g] for g in sub],
            k,
            exact_set_limit=limit,
            backend=self._backend,
        )

    @staticmethod
    def _recheck_certificate(
        bounds: tuple, sub: list[int], k: int, database: int, observed: float
    ) -> tuple[list[int], bool]:
        """Update bounds with an observation; re-expand if needed.

        The survivor set only ever grows: shrinking mid-run would
        discard incremental state for no answer benefit (keeping a
        database that *became* prunable is always sound).
        """
        universe, position, mins, maxs = bounds
        p = position.get(database)
        if p is None:  # probed outside the universe (defensive)
            return sub, False
        mins[p] = observed
        maxs[p] = observed
        mask = prunable_mask(mins, maxs, k)
        fresh = {g for g, dead in zip(universe, mask) if not dead}
        fresh.update(sub)
        merged = _pad_survivors(
            sorted(fresh), universe, position, mins, k
        )
        if len(merged) == len(sub):
            return sub, False
        return merged, True

    @staticmethod
    def _record_point(
        session, mediator, probes, best, score, sub=None
    ) -> None:
        names = tuple(
            mediator[i if sub is None else sub[i]].name for i in best
        )
        session.trajectory.append(
            TrajectoryPoint(
                probes=probes,
                names=names,
                expected_correctness=score,
            )
        )


def _pad_survivors(
    survivors: list[int],
    universe: list[int],
    position: dict[int, int],
    mins,
    k: int,
) -> list[int]:
    """Keep at least ``k + 1`` candidates when more exist.

    With exactly ``k`` survivors the restricted computer would take its
    own ``k == n`` certainty shortcut (score exactly 1.0) where the
    full-width computer still computes the product of near-one
    marginals; padding with the nearest-miss pruned databases (largest
    worst-case bound, then earliest index) keeps both paths on the same
    arithmetic. The padded databases carry ~zero top-k mass, so they
    change nothing else.
    """
    target = min(len(universe), k + 1)
    if len(survivors) >= target:
        return survivors
    kept = set(survivors)
    nearest = sorted(
        (g for g in universe if g not in kept),
        key=lambda g: (-float(mins[position[g]]), g),
    )
    kept.update(nearest[: target - len(kept)])
    return sorted(kept)


def _accepts_backend(selector: RDBasedSelector) -> bool:
    """Whether ``selector.build_rds`` takes a ``backend`` keyword.

    Mirrors :func:`_accepts_deadline`: duck-typed selectors written
    against the one-argument signature keep working (their RDs are
    backend-independent values anyway).
    """
    return _build_rds_takes(selector, "backend")


def _accepts_indices(selector: RDBasedSelector) -> bool:
    """Whether ``selector.build_rds`` can restrict construction.

    When it can, an explicit ``keep`` only builds RDs for the kept
    databases — the per-query sublinear path. Duck-typed selectors
    without the keyword still work; they just pay the full build.
    """
    return _build_rds_takes(selector, "indices")


def _build_rds_takes(selector: RDBasedSelector, name: str) -> bool:
    try:
        parameters = inspect.signature(selector.build_rds).parameters
    except (TypeError, ValueError, AttributeError):
        return False
    if any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    ):
        return True
    return name in parameters


def _accepts_deadline(policy: ProbePolicy) -> bool:
    """Whether ``policy.choose`` takes a ``deadline`` keyword.

    The in-repo policies are deadline-aware; user-supplied policies with
    the original four-argument signature keep working — APro simply
    checks the deadline itself between rounds.
    """
    try:
        parameters = inspect.signature(policy.choose).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return False
    if any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    ):
        return True
    return "deadline" in parameters
