"""Unit tests for the statistics substrate, cross-checked against scipy."""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats
from scipy import special as scipy_special

from repro.exceptions import DistributionError
from repro.stats.chisquare import pearson_chi2_test
from repro.stats.distribution import DiscreteDistribution
from repro.stats.histogram import Histogram
from repro.stats.special import chi2_sf, regularized_gamma_p, regularized_gamma_q


class TestSpecialFunctions:
    @pytest.mark.parametrize("a", [0.5, 1.0, 2.5, 4.5, 10.0, 50.0])
    @pytest.mark.parametrize("x", [0.0, 0.1, 1.0, 3.0, 10.0, 40.0, 120.0])
    def test_gamma_p_matches_scipy(self, a, x):
        assert regularized_gamma_p(a, x) == pytest.approx(
            float(scipy_special.gammainc(a, x)), abs=1e-10
        )

    @pytest.mark.parametrize("a", [0.5, 1.0, 2.5, 4.5, 10.0])
    @pytest.mark.parametrize("x", [0.0, 0.5, 2.0, 8.0, 30.0])
    def test_gamma_q_matches_scipy(self, a, x):
        assert regularized_gamma_q(a, x) == pytest.approx(
            float(scipy_special.gammaincc(a, x)), abs=1e-10
        )

    def test_p_plus_q_is_one(self):
        for a in (0.7, 3.0, 12.0):
            for x in (0.4, 2.0, 9.0):
                assert regularized_gamma_p(a, x) + regularized_gamma_q(
                    a, x
                ) == pytest.approx(1.0, abs=1e-12)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            regularized_gamma_p(0.0, 1.0)
        with pytest.raises(ValueError):
            regularized_gamma_p(1.0, -1.0)

    @pytest.mark.parametrize("dof", [1, 2, 5, 9, 20])
    @pytest.mark.parametrize("x", [0.0, 0.5, 3.0, 9.0, 25.0, 60.0])
    def test_chi2_sf_matches_scipy(self, dof, x):
        assert chi2_sf(x, dof) == pytest.approx(
            float(scipy_stats.chi2.sf(x, dof)), abs=1e-10
        )

    def test_chi2_sf_invalid(self):
        with pytest.raises(ValueError):
            chi2_sf(-1.0, 3)
        with pytest.raises(ValueError):
            chi2_sf(1.0, 0)


class TestDiscreteDistribution:
    def test_from_pairs_merges_duplicates(self):
        dist = DiscreteDistribution.from_pairs([(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)])
        assert dist.support_size == 2
        assert dist.prob_of(1.0) == pytest.approx(0.5)

    def test_from_samples(self):
        dist = DiscreteDistribution.from_samples([1, 1, 1, 3])
        assert dist.prob_of(1.0) == pytest.approx(0.75)
        assert dist.prob_of(3.0) == pytest.approx(0.25)

    def test_impulse(self):
        dist = DiscreteDistribution.impulse(4.0)
        assert dist.is_impulse
        assert dist.mean() == 4.0
        assert dist.variance() == 0.0
        assert dist.entropy() == 0.0

    def test_moments(self):
        dist = DiscreteDistribution.from_pairs([(0.0, 0.5), (2.0, 0.5)])
        assert dist.mean() == pytest.approx(1.0)
        assert dist.variance() == pytest.approx(1.0)
        assert dist.entropy() == pytest.approx(math.log(2))

    def test_cdf_sf(self):
        dist = DiscreteDistribution.from_pairs([(1.0, 0.25), (2.0, 0.5), (4.0, 0.25)])
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(1.0) == pytest.approx(0.25)
        assert dist.cdf(3.0) == pytest.approx(0.75)
        assert dist.sf(2.0) == pytest.approx(0.25)
        assert dist.sf(4.0) == 0.0

    def test_map_merges(self):
        dist = DiscreteDistribution.from_pairs([(1.0, 0.5), (-1.0, 0.5)])
        squared = dist.map(lambda v: v * v)
        assert squared.is_impulse
        assert squared.mean() == 1.0

    def test_sample_matches_distribution(self):
        dist = DiscreteDistribution.from_pairs([(0.0, 0.2), (1.0, 0.8)])
        rng = np.random.default_rng(3)
        draws = dist.sample(rng, 20_000)
        assert float(draws.mean()) == pytest.approx(0.8, abs=0.02)

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution.from_pairs([])
        with pytest.raises(DistributionError):
            DiscreteDistribution.from_samples([])

    def test_negative_weight_rejected(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution.from_pairs([(1.0, -0.5)])

    def test_values_read_only(self):
        dist = DiscreteDistribution.impulse(1.0)
        with pytest.raises(ValueError):
            dist.values[0] = 2.0

    def test_allclose(self):
        a = DiscreteDistribution.from_pairs([(1.0, 0.5), (2.0, 0.5)])
        b = DiscreteDistribution.from_pairs([(1.0, 0.5), (2.0, 0.5)])
        c = DiscreteDistribution.from_pairs([(1.0, 0.4), (2.0, 0.6)])
        assert a.allclose(b)
        assert not a.allclose(c)


class TestHistogram:
    def test_binning(self):
        hist = Histogram([0.0, 1.0, 2.0])
        hist.add_all([0.1, 0.5, 1.5])
        assert list(hist.counts) == [2, 1]
        assert hist.total == 3

    def test_clamping_out_of_range(self):
        hist = Histogram([0.0, 1.0])
        hist.add(-5.0)
        hist.add(5.0)
        assert hist.total == 2
        assert hist.counts[0] == 2

    def test_bin_means(self):
        hist = Histogram([0.0, 10.0])
        hist.add_all([2.0, 4.0])
        assert hist.bin_mean(0) == pytest.approx(3.0)

    def test_empty_bin_mean_is_center(self):
        hist = Histogram([0.0, 10.0])
        assert hist.bin_mean(0) == pytest.approx(5.0)

    def test_to_distribution(self):
        hist = Histogram([0.0, 1.0, 2.0])
        hist.add_all([0.25, 0.75, 1.5, 1.5])
        dist = hist.to_distribution()
        assert dist.prob_of(0.5) == pytest.approx(0.5)
        assert dist.prob_of(1.5) == pytest.approx(0.5)

    def test_to_distribution_empty_raises(self):
        with pytest.raises(DistributionError):
            Histogram([0.0, 1.0]).to_distribution()

    def test_merge(self):
        a = Histogram([0.0, 1.0, 2.0])
        a.add(0.5)
        b = Histogram([0.0, 1.0, 2.0])
        b.add(1.5)
        merged = a.merged_with(b)
        assert merged.total == 2
        assert list(merged.counts) == [1, 1]

    def test_merge_mismatched_edges(self):
        with pytest.raises(DistributionError):
            Histogram([0.0, 1.0]).merged_with(Histogram([0.0, 2.0]))

    def test_invalid_edges(self):
        with pytest.raises(DistributionError):
            Histogram([1.0])
        with pytest.raises(DistributionError):
            Histogram([1.0, 1.0])


class TestPearsonChi2:
    def test_matches_scipy_chisquare(self):
        observed = np.array([18.0, 22.0, 30.0, 30.0])
        proportions = np.array([0.25, 0.25, 0.25, 0.25])
        result = pearson_chi2_test(observed, proportions)
        expected = scipy_stats.chisquare(observed)
        assert result.statistic == pytest.approx(expected.statistic)
        assert result.p_value == pytest.approx(expected.pvalue, abs=1e-10)

    def test_matches_scipy_uneven_reference(self):
        observed = np.array([50.0, 30.0, 20.0])
        proportions = np.array([0.5, 0.3, 0.2])
        result = pearson_chi2_test(observed, proportions)
        expected = scipy_stats.chisquare(
            observed, f_exp=observed.sum() * proportions
        )
        assert result.statistic == pytest.approx(expected.statistic)
        assert result.p_value == pytest.approx(expected.pvalue, abs=1e-10)

    def test_identical_distribution_accepts(self):
        observed = np.array([100.0, 200.0, 300.0])
        proportions = observed / observed.sum()
        result = pearson_chi2_test(observed, proportions)
        assert result.p_value == pytest.approx(1.0)
        assert result.accepted()

    def test_grossly_different_rejects(self):
        observed = np.array([100.0, 0.0, 0.0])
        proportions = np.array([1 / 3, 1 / 3, 1 / 3])
        result = pearson_chi2_test(observed, proportions)
        assert result.p_value < 0.001
        assert not result.accepted()

    def test_zero_sample_degenerate(self):
        result = pearson_chi2_test(
            np.zeros(3), np.array([0.5, 0.3, 0.2])
        )
        assert result.p_value == 1.0

    def test_small_expected_bins_merged(self):
        # One bin has expected count 0.1 << 1; must be merged, not
        # explode the statistic.
        observed = np.array([99.0, 1.0])
        proportions = np.array([0.999, 0.001])
        result = pearson_chi2_test(observed, proportions)
        assert math.isfinite(result.statistic)

    def test_impossible_observation(self):
        # Mass observed in a zero-probability bin: strong rejection.
        observed = np.array([50.0, 50.0])
        proportions = np.array([1.0, 0.0])
        result = pearson_chi2_test(observed, proportions)
        assert result.p_value < 1e-6

    def test_empty_reference_degenerate(self):
        # A reference with no mass at all: nothing to test against.
        result = pearson_chi2_test(np.array([5.0, 5.0]), np.zeros(2))
        assert result.p_value == 1.0
        assert result.dof == 1
        assert result.accepted()

    def test_all_reference_mass_in_one_bin(self):
        # One live reference bin and the sample sits in it: after the
        # zero-proportion bins are dropped a single bin remains, which
        # can never disagree with itself — degenerate acceptance.
        observed = np.array([0.0, 40.0, 0.0])
        proportions = np.array([0.0, 1.0, 0.0])
        result = pearson_chi2_test(observed, proportions)
        assert result.statistic == 0.0
        assert result.dof == 1
        assert result.p_value == 1.0

    def test_merge_chain_collapses_to_single_bin(self):
        # Every expected count sits below the floor, so the validity
        # merge cascades until one bin holds everything: degenerate
        # p = 1, never a division blow-up or a spurious rejection.
        observed = np.array([1.0, 0.0, 1.0, 0.0])
        proportions = np.array([0.25, 0.25, 0.25, 0.25])
        result = pearson_chi2_test(
            observed, proportions, min_expected=5.0
        )
        assert result.statistic == 0.0
        assert result.dof == 1
        assert result.p_value == 1.0
        assert result.accepted(0.05)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_chi2_test(np.ones(3), np.ones(4))

    def test_negative_counts(self):
        with pytest.raises(ValueError):
            pearson_chi2_test(np.array([-1.0, 2.0]), np.array([0.5, 0.5]))
