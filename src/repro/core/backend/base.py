"""The numeric-kernel contract every array backend implements.

:class:`~repro.core.topk.TopKComputer` and the RD builder keep all of
their *orchestration* (memoization, collapse bookkeeping, answer-set
search) backend-independent and delegate the numeric kernels — outrank
matrix construction, the Poisson-binomial DP chains, the leave-one-out
convolution, the override membership fold, the collapse column update
and batched RD derivation — to an :class:`ArrayBackend`.

Two implementations ship in-tree:

* ``python`` (:mod:`repro.core.backend.python_backend`) — the legacy
  row-wise path: per-database Python loops over NumPy rows, exactly the
  arithmetic the pre-backend tree performed. It is the **oracle**: the
  equality tests compare every other backend against it.
* ``numpy`` (:mod:`repro.core.backend.numpy_backend`) — the default
  tensor engine: one stacked array pass per kernel, no per-database
  Python iteration.

The registry (:mod:`repro.core.backend.registry`) is the hook for a
compiled backend later (Cython/C/ISPC): subclass :class:`ArrayBackend`
(or the numpy backend, overriding only the kernels the compiled path
accelerates) and :func:`~repro.core.backend.register_backend` it.

Equality contract
-----------------
All backends must produce **identical answer sets and probe orders**,
with certainty values agreeing to an absolute tolerance of ``1e-9`` —
the same contract the incremental-collapse path satisfies against the
rebuild path. Kernels are free to reassociate floating-point reductions
within that tolerance; they are not free to change tie-breaking, atom
ordering, or support layouts.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["ArrayBackend"]


class ArrayBackend(abc.ABC):
    """Numeric kernels behind :class:`~repro.core.topk.TopKComputer`.

    Attributes
    ----------
    name:
        Registry name (``"numpy"``, ``"python"``, ...).
    vectorized:
        Whether the backend supports the whole-sweep batched paths
        (:meth:`TopKComputer.usefulness_sweep`, batched RD derivation).
        The row-wise oracle reports ``False`` so its callers keep the
        exact legacy control flow.
    """

    name: str = "abstract"
    vectorized: bool = False

    @abc.abstractmethod
    def outrank_structures(
        self,
        probs: np.ndarray,
        dbs: np.ndarray,
        ranks: np.ndarray,
        order: np.ndarray,
        n: int,
    ) -> tuple[
        np.ndarray,
        np.ndarray,
        list[np.ndarray],
        list[np.ndarray],
    ]:
        """Build the outrank matrices plus the collapse search structure.

        Parameters are the flat atom layout: per-atom probabilities,
        owning database indices, global ranks, and ``order`` (atom
        indices sorted by rank). Returns
        ``(greater_masked, less, db_sorted_ranks, db_cumprobs)`` where
        ``greater_masked[j, t]`` is the mass of database j strictly
        outranking atom t (own-database entries zeroed) and
        ``less[j, t]`` the mass strictly below. ``db_sorted_ranks`` /
        ``db_cumprobs`` are the per-database rank / cumulative-mass
        arrays :meth:`collapse_column` searches.
        """

    @abc.abstractmethod
    def dp_chain(
        self, greater: np.ndarray, k: int, reverse: bool = False
    ) -> np.ndarray:
        """Stacked Poisson-binomial DP chain, shape ``(n+1, m, k)``.

        Entry ``j`` of the forward chain is the truncated outrank-count
        distribution over databases ``0..j-1`` (for every atom); the
        reversed chain's entry ``j`` covers databases ``j..n-1``.
        """

    @abc.abstractmethod
    def loo_combine(
        self, pre: np.ndarray, suf: np.ndarray, k: int
    ) -> np.ndarray:
        """Truncated count-distribution convolution along the k axis.

        ``out[..., c] = sum_{a+b=c} pre[..., a] * suf[..., b]`` for
        ``c < k`` — combining a prefix and a suffix DP table into the
        leave-one-out table. Accepts ``(m, k)`` or stacked ``(n, m, k)``
        inputs.
        """

    @abc.abstractmethod
    def override_membership(
        self, dp_loo: np.ndarray, g: np.ndarray, k: int
    ) -> np.ndarray:
        """Fold indicator outrank rows into a leave-one-out table.

        ``dp_loo`` is a (broadcastable) ``(..., m, k)`` leave-one-out
        count table; ``g`` a ``(..., m)`` 0/1 outrank row per
        hypothetical impulse. Returns ``(..., m)``:
        ``P[count <= k-1]`` per atom after folding in the impulse.
        """

    @abc.abstractmethod
    def collapse_column(
        self,
        rank0: float,
        database: int,
        n: int,
        db_sorted_ranks: list[np.ndarray],
        db_cumprobs: list[np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Outrank-mass columns of a re-ranked atom against every database.

        Called by the out-of-support :meth:`TopKComputer.collapse` path:
        the repurposed atom moved to the fresh rank ``rank0``, so every
        *other* database's mass strictly above / strictly below it must
        be re-read. Returns ``(greater_col, less_col)`` of length ``n``;
        the entry for ``database`` itself is a placeholder (the caller
        overwrites row ``database`` wholesale).
        """

    @abc.abstractmethod
    def derive_rd_arrays(
        self,
        floored: np.ndarray,
        error_values: np.ndarray,
        error_probs: np.ndarray,
        owner: np.ndarray,
        document_frequency: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Batched RD supports for many databases in one pass.

        Inputs are the concatenated ED atoms of every pending database:
        ``floored`` the per-atom floored estimate (repeated per ED
        atom), ``error_values`` / ``error_probs`` the ED atoms, and
        ``owner`` the owning-database index per atom (grouped,
        ascending; values ascending within each group). Maps each atom
        through ``floored * (1 + e)`` (rounded and clamped per the
        relevancy definition), drops zero-weight atoms and merges
        colliding values per database, returning
        ``(values, weights, owner_of_group)`` concatenated over
        databases. Returns ``None`` when the backend has no batched
        path (the caller then uses the row-wise
        :func:`repro.core.relevancy.derive_rd`).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
