"""Tests for trained-state persistence (save → load → identical answers)."""

import json

import pytest

from repro.core.errors import ErrorDistribution
from repro.core.query_types import QueryType
from repro.core.topk import CorrectnessMetric
from repro.core.training import ErrorModel
from repro.exceptions import ConfigurationError
from repro.metasearch.metasearcher import Metasearcher, MetasearcherConfig
from repro.persistence import (
    CHECKPOINT_FORMAT_VERSION,
    TrainedState,
    TrainingCheckpoint,
    load_trained_state,
    load_training_checkpoint,
    save_trained_state,
    save_training_checkpoint,
)
from repro.summaries.summary import ContentSummary


class TestErrorDistributionState:
    def test_round_trip(self):
        ed = ErrorDistribution()
        ed.observe_all([-1.0, -0.4, 0.1, 2.3, 17.0])
        restored = ErrorDistribution.from_state(ed.state())
        assert restored.sample_count == ed.sample_count
        assert restored.to_distribution().allclose(ed.to_distribution())

    def test_state_is_json_serializable(self):
        ed = ErrorDistribution()
        ed.observe_all([0.5, -0.5])
        text = json.dumps(ed.state())
        restored = ErrorDistribution.from_state(json.loads(text))
        assert restored.sample_count == 2

    def test_state_carries_version(self):
        from repro.core.errors import ED_STATE_VERSION

        assert ErrorDistribution().state()["version"] == ED_STATE_VERSION

    def test_versionless_state_accepted_as_v1(self):
        ed = ErrorDistribution()
        ed.observe_all([0.25, -0.75])
        state = ed.state()
        state.pop("version")
        restored = ErrorDistribution.from_state(state)
        assert restored.sample_count == 2

    def test_unknown_version_rejected(self):
        from repro.exceptions import DistributionError

        state = ErrorDistribution().state()
        state["version"] = 999
        with pytest.raises(DistributionError, match="version"):
            ErrorDistribution.from_state(state)


class TestErrorModelState:
    def test_round_trip_preserves_lookups(self):
        model = ErrorModel(min_samples=2)
        for _ in range(5):
            model.observe("db-a", QueryType(2, 0), -0.8)
            model.observe("db-a", QueryType(2, 1), 1.5)
            model.observe("db-b", QueryType(3, 0), 0.0)
        restored = ErrorModel.from_state_dict(
            json.loads(json.dumps(model.state_dict()))
        )
        for name in ("db-a", "db-b"):
            for query_type in (QueryType(2, 0), QueryType(2, 1), QueryType(3, 0)):
                original = model.lookup(name, query_type)
                loaded = restored.lookup(name, query_type)
                assert (original is None) == (loaded is None)
                if original is not None:
                    assert loaded.to_distribution().allclose(
                        original.to_distribution()
                    )

    def test_state_carries_version(self):
        from repro.core.training import ERROR_MODEL_STATE_VERSION

        state = ErrorModel().state_dict()
        assert state["version"] == ERROR_MODEL_STATE_VERSION

    def test_versionless_state_accepted_as_v1(self):
        model = ErrorModel(min_samples=2)
        model.observe("db-a", QueryType(2, 0), -0.5)
        state = model.state_dict()
        state.pop("version")
        restored = ErrorModel.from_state_dict(state)
        assert restored.database_ed("db-a").sample_count == 1

    def test_unknown_version_rejected(self):
        from repro.exceptions import TrainingError

        state = ErrorModel().state_dict()
        state["version"] = 999
        with pytest.raises(TrainingError, match="version"):
            ErrorModel.from_state_dict(state)

    def test_round_trip_preserves_config(self):
        model = ErrorModel(min_samples=7, estimate_floor=0.25)
        model.observe("db", QueryType(2, 0), 0.0)
        restored = ErrorModel.from_state_dict(model.state_dict())
        assert restored.estimate_floor == 0.25


class TestSummaryDict:
    def test_round_trip(self):
        summary = ContentSummary(
            "db", 500, {"cancer": 40, "heart": 3}, sampled_documents=90
        )
        restored = ContentSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert restored.database_name == "db"
        assert restored.size == 500
        assert restored.sampled_documents == 90
        assert restored.document_frequency("cancer") == 40

    def test_exact_summary_round_trip(self):
        summary = ContentSummary("db", 10, {"a": 1})
        restored = ContentSummary.from_dict(summary.to_dict())
        assert restored.is_exact


class TestTrainingCheckpoint:
    def _checkpoint(self):
        model = ErrorModel(min_samples=2)
        for _ in range(4):
            model.observe("db-a", QueryType(2, 0), -0.5)
        return TrainingCheckpoint(
            queries_done=12,
            error_model_state=model.state_dict(),
            fingerprint={"databases": ["db-a"], "samples_per_type": 8},
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        checkpoint = self._checkpoint()
        save_training_checkpoint(checkpoint, path)
        loaded = load_training_checkpoint(path)
        assert loaded.queries_done == 12
        assert loaded.fingerprint == checkpoint.fingerprint
        restored = ErrorModel.from_state_dict(loaded.error_model_state)
        assert restored.slice_counts() == {("db-a", QueryType(2, 0)): 4}

    def test_write_is_atomic(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        save_training_checkpoint(self._checkpoint(), path)
        # The scratch file was moved into place, not left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["checkpoint.json"]

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"checkpoint_format_version": 999}))
        with pytest.raises(ConfigurationError):
            load_training_checkpoint(path)

    def test_corrupt_cursor_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "checkpoint_format_version": CHECKPOINT_FORMAT_VERSION,
                    "queries_done": -3,
                    "fingerprint": {},
                    "error_model": {},
                }
            )
        )
        with pytest.raises(ConfigurationError):
            load_training_checkpoint(path)


class TestMetasearcherSaveLoad:
    def test_save_then_load_gives_identical_selections(
        self, tiny_mediator, health_queries, analyzer, tmp_path
    ):
        path = tmp_path / "trained.json"
        original = Metasearcher(
            tiny_mediator,
            MetasearcherConfig(samples_per_type=20),
            analyzer=analyzer,
        )
        original.train(health_queries[:60])
        original.save(path)

        restored = Metasearcher(
            tiny_mediator,
            MetasearcherConfig(samples_per_type=20),
            analyzer=analyzer,
        )
        restored.load(path)
        assert restored.is_trained
        for query in health_queries[60:75]:
            a = original.select_without_probing(query, 2)
            b = restored.select_without_probing(query, 2)
            assert a.names == b.names
            assert a.expected_correctness == pytest.approx(
                b.expected_correctness
            )

    def test_save_before_training_rejected(self, tiny_mediator, tmp_path):
        searcher = Metasearcher(tiny_mediator)
        with pytest.raises(Exception):
            searcher.save(tmp_path / "x.json")

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 999}))
        with pytest.raises(ConfigurationError):
            load_trained_state(path)

    def test_missing_summary_on_attach(
        self, tiny_mediator, health_queries, analyzer, tmp_path
    ):
        from repro.summaries.estimators import TermIndependenceEstimator

        path = tmp_path / "trained.json"
        searcher = Metasearcher(
            tiny_mediator,
            MetasearcherConfig(samples_per_type=10),
            analyzer=analyzer,
        )
        searcher.train(health_queries[:30])
        searcher.save(path)
        state = load_trained_state(path)
        incomplete = TrainedState(
            summaries={
                k: v
                for k, v in state.summaries.items()
                if k != tiny_mediator.names[0]
            },
            error_model=state.error_model,
            estimate_thresholds=state.estimate_thresholds,
            term_counts=state.term_counts,
            definition=state.definition,
        )
        with pytest.raises(ConfigurationError):
            incomplete.selector(tiny_mediator, TermIndependenceEstimator())

    def test_state_file_round_trip_standalone(
        self, trained_pipeline, tmp_path
    ):
        from repro.hiddenweb.database import RelevancyDefinition

        from repro.core.query_types import QueryTypeClassifier

        state = TrainedState(
            summaries=trained_pipeline["summaries"],
            error_model=trained_pipeline["error_model"],
            estimate_thresholds=QueryTypeClassifier.DEFAULT_THRESHOLDS,
            term_counts=(2, 3),
            definition=RelevancyDefinition.DOCUMENT_FREQUENCY,
        )
        path = tmp_path / "state.json"
        save_trained_state(state, path)
        loaded = load_trained_state(path)
        assert set(loaded.summaries) == set(state.summaries)
        assert loaded.estimate_thresholds == QueryTypeClassifier.DEFAULT_THRESHOLDS
        selector = loaded.selector(
            trained_pipeline["mediator"], trained_pipeline["estimator"]
        )
        query = trained_pipeline["test_queries"][0]
        fresh = trained_pipeline["selector"].select(
            query, 1, CorrectnessMetric.ABSOLUTE
        )
        restored = selector.select(query, 1, CorrectnessMetric.ABSOLUTE)
        assert fresh.names == restored.names
