"""Cluster tier tests: ring, cache tier, router, cursors, stats, retry.

Everything here runs in-process (``InProcessReplica`` over the
session-scoped trained metasearcher) so the suite stays fast; the
subprocess/SIGKILL paths live in ``test_cluster_failover.py``. The
cluster-of-1 transparency tests parametrize representative gateway
behaviours over both a bare gateway and a router-fronted cluster — a
client must not be able to tell them apart.
"""

import asyncio
import socket

import pytest

from repro.exceptions import ConfigurationError, ReproError
from repro.cluster import (
    CacheTierClient,
    CacheTierServer,
    ClusterRouter,
    ConsistentHashRing,
    InProcessReplica,
    RouterConfig,
    answer_key,
    decode_answer,
    encode_answer,
    parse_address,
    request_fingerprint,
)
from repro.gateway.client import (
    GatewayClient,
    SyncGatewayClient,
    retry_backoff_s,
)
from repro.gateway.gateway import GatewayConfig, MetasearchGateway
from repro.gateway.protocol import ErrorCode, GatewayError
from repro.metasearch.metasearcher import MetasearcherConfig
from repro.service.server import MetasearchService, ServiceConfig
from repro.types import Query


def run(coroutine):
    return asyncio.run(coroutine)


def make_service(trained_metasearcher, **kwargs):
    config = kwargs.pop("config", None) or ServiceConfig(
        max_workers=4, batch_size=2
    )
    return MetasearchService(trained_metasearcher, config=config, **kwargs)


# -- consistent hashing --------------------------------------------------------


class TestConsistentHashRing:
    def test_deterministic_and_stable(self):
        a = ConsistentHashRing(["r0", "r1", "r2"])
        b = ConsistentHashRing(["r2", "r0", "r1"])
        keys = [f"query {i}" for i in range(200)]
        assert [a.node(k) for k in keys] == [b.node(k) for k in keys]

    def test_spreads_keys(self):
        ring = ConsistentHashRing(["r0", "r1", "r2", "r3"])
        keys = [f"query {i}" for i in range(400)]
        owners = {name: 0 for name in ring.nodes}
        for key in keys:
            owners[ring.node(key)] += 1
        assert all(count > 0 for count in owners.values())

    def test_removal_only_remaps_lost_nodes_keys(self):
        ring = ConsistentHashRing(["r0", "r1", "r2"])
        keys = [f"query {i}" for i in range(300)]
        before = {k: ring.node(k) for k in keys}
        ring.remove("r1")
        for key in keys:
            if before[key] != "r1":
                assert ring.node(key) == before[key]
            else:
                assert ring.node(key) in ("r0", "r2")

    def test_membership_and_idempotence(self):
        ring = ConsistentHashRing(["r0"])
        assert "r0" in ring and len(ring) == 1
        ring.add("r0")
        assert len(ring) == 1
        ring.add("r1")
        assert sorted(ring.nodes) == ["r0", "r1"]
        ring.remove("r1")
        ring.remove("r1")
        assert "r1" not in ring

    def test_empty_ring_refuses(self):
        ring = ConsistentHashRing([])
        with pytest.raises(ReproError):
            ring.node("anything")

    def test_fingerprint_separates_parameters(self):
        assert request_fingerprint("q", 3, 0.9) != request_fingerprint(
            "q", 2, 0.9
        )
        assert request_fingerprint("q", 3, 0.9) != request_fingerprint(
            "q", 3, 0.8
        )
        # repr round-trips floats: equal inputs, equal fingerprints
        assert request_fingerprint("q", 3, 0.9) == request_fingerprint(
            "q", 3, 0.9
        )


# -- cache tier protocol -------------------------------------------------------


class TestParseAddress:
    def test_round_trip(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)

    @pytest.mark.parametrize(
        "bad", ["nope", ":9000", "host:", "host:abc", "host:0", "host:70000"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            parse_address(bad)


class TestAnswerCodec:
    def test_key_is_deterministic_and_discriminating(self):
        q = Query(terms=("breast", "cancer"))
        key = answer_key("fp", q, 3, 0.9, "Cor")
        assert key == answer_key("fp", Query(terms=("breast", "cancer")), 3, 0.9, "Cor")
        assert key != answer_key("fp2", q, 3, 0.9, "Cor")
        assert key != answer_key("fp", q, 2, 0.9, "Cor")
        assert key != answer_key("fp", q, 3, 0.8, "Cor")

    def test_encode_decode_round_trip(self, trained_metasearcher):
        service = make_service(trained_metasearcher)
        try:
            answer = service.serve("breast cancer", k=2, certainty=0.9)
            value = encode_answer(answer)
            rebuilt = decode_answer(
                value, answer.query, answer.k, answer.certainty_required
            )
            assert rebuilt is not None
            assert rebuilt.selected == answer.selected
            assert rebuilt.certainty == answer.certainty
            assert rebuilt.probes == answer.probes
            assert rebuilt.probe_order == answer.probe_order
            assert rebuilt.cache_hit is True
            assert rebuilt.degraded is None
        finally:
            service.shutdown()

    @pytest.mark.parametrize(
        "value",
        [None, "text", 7, {}, {"selected": ["a"]},
         {"selected": ["a"], "certainty": "x", "probes": 1,
          "probe_order": []}],
    )
    def test_decode_malformed_is_a_miss(self, value):
        assert decode_answer(value, Query(terms=("q",)), 1, 0.5) is None


class TestCacheTier:
    def test_get_put_stats_round_trip(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            async with CacheTierServer() as tier:
                client = CacheTierClient(tier.address)

                def call(fn, *args):
                    return loop.run_in_executor(None, fn, *args)

                assert await call(client.ping) is True
                assert await call(client.get, "k") is None
                assert await call(client.put, "k", {"x": 1}) is True
                assert await call(client.get, "k") == {"x": 1}
                stats = await call(client.stats)
                client.close()
                return stats, tier.stats()

        stats, server_stats = run(scenario())
        assert stats["gets"] == 2
        assert stats["puts"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert server_stats["size"] == 1

    def test_stats_key_set_is_stable(self):
        async def scenario():
            async with CacheTierServer() as tier:
                return tier.stats()

        assert set(run(scenario())) == {
            "gets", "puts", "hits", "misses",
            "evictions", "expirations", "size",
        }

    def test_client_absorbs_a_dead_tier(self):
        # Reserve a port, then close it: connection refused for sure.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = CacheTierClient(f"127.0.0.1:{port}", timeout_s=0.2)
        assert client.get("k") is None
        assert client.put("k", {"x": 1}) is False
        assert client.ping() is False
        assert client.stats() is None
        assert client.errors == 4
        client.close()

    def test_server_rejects_malformed_requests(self):
        async def scenario():
            async with CacheTierServer() as tier:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", tier.port
                )
                out = []
                for line in (
                    b"not json\n",
                    b'{"v": "cache/v1", "id": 1, "op": "nope"}\n',
                    b'{"v": "wrong", "id": 2, "op": "ping"}\n',
                    b'{"v": "cache/v1", "id": 3, "op": "get", "key": ""}\n',
                    b'{"v": "cache/v1", "id": 4, "op": "put", '
                    b'"key": "k", "value": 3}\n',
                ):
                    writer.write(line)
                    await writer.drain()
                    import json

                    out.append(json.loads(await reader.readline()))
                writer.close()
                await writer.wait_closed()
                return out

        responses = run(scenario())
        assert all(response["ok"] is False for response in responses)


class TestServiceCacheTierIntegration:
    def test_second_service_hits_the_shared_tier(self, trained_metasearcher):
        """Two services, one tier: r1 serves r0's computed answer."""

        async def scenario():
            async with CacheTierServer() as tier:
                config = ServiceConfig(
                    max_workers=4, batch_size=2, cache_tier=tier.address
                )
                r0 = InProcessReplica(
                    "r0", trained_metasearcher, service_config=config
                )
                r1 = InProcessReplica(
                    "r1", trained_metasearcher, service_config=config
                )
                await r0.start()
                await r1.start()
                try:
                    c0 = await GatewayClient.connect(r0.host, r0.port)
                    first = await c0.search(
                        "breast cancer", k=2, certainty=0.9
                    )
                    await c0.close()
                    c1 = await GatewayClient.connect(r1.host, r1.port)
                    second = await c1.search(
                        "breast cancer", k=2, certainty=0.9
                    )
                    stats = await c1.stats()
                    await c1.close()
                finally:
                    await r0.stop()
                    await r1.stop()
                return first, second, stats

        first, second, stats = run(scenario())
        assert first["served"]["cache_hit"] is False
        assert second["served"]["cache_hit"] is True
        assert first["answer"] == second["answer"]
        counters = stats["service"]["counters"]
        assert counters["cache_tier_hits"] == 1
        assert counters["cache_tier_errors"] == 0

    def test_snapshot_always_carries_cache_tier_section(
        self, trained_metasearcher
    ):
        """Key-set regression: tier counters exist even when disabled."""
        service = make_service(trained_metasearcher)
        try:
            snapshot = service.snapshot()
        finally:
            service.shutdown()
        assert snapshot["cache_tier"] == {
            "enabled": False, "address": None, "errors": 0,
        }
        for name in (
            "cache_tier_hits", "cache_tier_misses",
            "cache_tier_puts", "cache_tier_errors",
            "prefilter_requests_total", "prefilter_dropped_total",
        ):
            assert snapshot["counters"][name] == 0
        assert {"hits", "misses", "evictions", "expirations", "size"} <= set(
            snapshot["cache"]
        )
        # The mode mirrors whatever REPRO_PREFILTER resolved to when the
        # session fixture was built, so the key set (not the value) is
        # what this test pins.
        expected_mode = MetasearcherConfig().prune_mode
        assert snapshot["prefilter"] == {"mode": expected_mode, "top_m": 16}
        assert "pruned_databases" in snapshot["histograms"]


# -- router / cluster-of-1 transparency ----------------------------------------


async def start_cluster(trained_metasearcher, count, **router_kwargs):
    replicas = [
        InProcessReplica(
            f"r{i}",
            trained_metasearcher,
            service_config=ServiceConfig(max_workers=4, batch_size=2),
        )
        for i in range(count)
    ]
    for replica in replicas:
        await replica.start()
    router_kwargs.setdefault("ping_interval_s", 0)
    router = ClusterRouter(replicas, RouterConfig(**router_kwargs))
    await router.start()
    return router, replicas


async def stop_cluster(router, replicas):
    await router.stop()
    for replica in replicas:
        await replica.stop()


@pytest.fixture(params=["direct", "cluster1"])
def endpoint(request, trained_metasearcher):
    """One connectable gateway/v1 endpoint: bare gateway or cluster-of-1.

    The transparency contract: every behaviour asserted through this
    fixture must hold identically for both parametrizations.
    """

    class Endpoint:
        kind = request.param

        def __init__(self):
            self._router = None
            self._replicas = []
            self._gateway = None
            self._service = None

        async def __aenter__(self):
            if self.kind == "direct":
                self._service = make_service(trained_metasearcher)
                self._gateway = MetasearchGateway(
                    self._service, GatewayConfig()
                )
                await self._gateway.start()
                self.port = self._gateway.port
            else:
                self._router, self._replicas = await start_cluster(
                    trained_metasearcher, 1
                )
                self.port = self._router.port
            return self

        async def __aexit__(self, *exc_info):
            if self.kind == "direct":
                await self._gateway.stop()
                self._service.shutdown()
            else:
                await stop_cluster(self._router, self._replicas)

    return Endpoint


class TestClusterOfOneTransparency:
    def test_search_answer_identical_to_direct_serve(
        self, endpoint, trained_metasearcher
    ):
        async def scenario():
            async with endpoint() as ep:
                client = await GatewayClient.connect("127.0.0.1", ep.port)
                result = await client.search(
                    "breast cancer treatment", k=2, certainty=0.9
                )
                await client.close()
                return result

        result = run(scenario())
        direct = make_service(trained_metasearcher)
        try:
            answer = direct.serve(
                "breast cancer treatment", k=2, certainty=0.9
            )
        finally:
            direct.shutdown()
        assert tuple(result["answer"]["selected"]) == answer.selected
        assert result["answer"]["certainty"] == pytest.approx(
            answer.certainty, abs=1e-9
        )
        assert tuple(result["answer"]["probe_order"]) == answer.probe_order

    def test_ping_and_bad_request(self, endpoint):
        async def scenario():
            async with endpoint() as ep:
                client = await GatewayClient.connect("127.0.0.1", ep.port)
                pong = await client.ping()
                with pytest.raises(GatewayError) as excinfo:
                    await client.search("", k=2)
                await client.close()
                return pong, excinfo.value.code

        pong, code = run(scenario())
        assert pong["pong"] is True
        assert code is ErrorCode.BAD_REQUEST

    def test_concurrent_duplicates_coalesce(self, endpoint):
        async def scenario():
            async with endpoint() as ep:
                client = await GatewayClient.connect("127.0.0.1", ep.port)
                results = await asyncio.gather(
                    *(
                        client.search("cancer research", k=2, certainty=0.95)
                        for _ in range(6)
                    )
                )
                await client.close()
                return results

        results = run(scenario())
        assert len({r["answer"]["certainty"] for r in results}) == 1
        assert any(r["served"]["coalesced"] for r in results)

    def test_cursor_pages_reassemble(self, endpoint):
        async def scenario():
            async with endpoint() as ep:
                client = await GatewayClient.connect("127.0.0.1", ep.port)
                result = await client.search(
                    "heart disease", k=2, certainty=0.9, cursor=True
                )
                handle = result["handle"]
                rows, cursor, done = [], None, False
                pages = 0
                while not done:
                    page = await client.fetch(
                        handle["run_id"], cursor=cursor, limit=2
                    )
                    rows.extend(page["rows"])
                    cursor, done = page["cursor"], page["done"]
                    pages += 1
                await client.close()
                return handle, rows, pages, result

        handle, rows, pages, result = run(scenario())
        assert handle["total"] == 4  # the four tiny databases
        assert len(rows) == 4 and pages == 2
        names = [r["database"] for r in rows]
        assert len(set(names)) == 4
        estimates = [r["estimate"] for r in rows]
        assert estimates == sorted(estimates, reverse=True)
        selected = {r["database"] for r in rows if r["selected"]}
        assert selected == set(result["answer"]["selected"])

    def test_fetch_unknown_run_id_is_not_found(self, endpoint):
        async def scenario():
            async with endpoint() as ep:
                client = await GatewayClient.connect("127.0.0.1", ep.port)
                run_id = (
                    "deadbeef" if ep.kind == "direct" else "r0/deadbeef"
                )
                with pytest.raises(GatewayError) as excinfo:
                    await client.fetch(run_id)
                await client.close()
                return excinfo.value.code

        assert run(scenario()) is ErrorCode.NOT_FOUND


class TestRouterSemantics:
    def test_sharding_is_sticky_and_spreads(self, trained_metasearcher):
        async def scenario():
            router, replicas = await start_cluster(trained_metasearcher, 3)
            try:
                client = await GatewayClient.connect(
                    "127.0.0.1", router.port
                )
                queries = [f"cancer therapy {i}" for i in range(8)]
                first = {}
                for query in queries:
                    result = await client.search(query, k=2, certainty=0.8)
                    first[query] = result["served"]["replica"]
                # repeats land on the same replica (cache/coalesce home)
                for query in queries:
                    result = await client.search(query, k=2, certainty=0.8)
                    assert result["served"]["replica"] == first[query]
                    assert result["served"]["cache_hit"] is True
                await client.close()
                return set(first.values())
            finally:
                await stop_cluster(router, replicas)

        assert len(run(scenario())) >= 2

    def test_handle_routes_back_through_prefix(self, trained_metasearcher):
        async def scenario():
            router, replicas = await start_cluster(trained_metasearcher, 3)
            try:
                client = await GatewayClient.connect(
                    "127.0.0.1", router.port
                )
                result = await client.search(
                    "breast cancer", k=2, certainty=0.9, cursor=True
                )
                handle = result["handle"]
                owner = result["served"]["replica"]
                assert handle["run_id"].startswith(f"{owner}/")
                page = await client.fetch(handle["run_id"], limit=10)
                assert page["done"] is True
                assert page["run_id"] == handle["run_id"]
                with pytest.raises(GatewayError) as excinfo:
                    await client.fetch("unprefixed")
                await client.close()
                return excinfo.value.code, len(page["rows"])
            finally:
                await stop_cluster(router, replicas)

        code, rows = run(scenario())
        assert code is ErrorCode.NOT_FOUND
        assert rows == 4

    def test_typed_errors_pass_through_untouched(self, trained_metasearcher):
        async def scenario():
            router, replicas = await start_cluster(trained_metasearcher, 2)
            try:
                client = await GatewayClient.connect(
                    "127.0.0.1", router.port
                )
                with pytest.raises(GatewayError) as excinfo:
                    await client.search("x", k=0)
                await client.close()
                return excinfo.value.code
            finally:
                await stop_cluster(router, replicas)

        assert run(scenario()) is ErrorCode.BAD_REQUEST

    def test_drain_and_restore_replica(self, trained_metasearcher):
        async def scenario():
            router, replicas = await start_cluster(trained_metasearcher, 2)
            try:
                assert set(router.replicas_up) == {"r0", "r1"}
                router.drain_replica("r0")
                assert router.replicas_up == ("r1",)
                client = await GatewayClient.connect(
                    "127.0.0.1", router.port
                )
                for i in range(4):
                    result = await client.search(
                        f"query {i}", k=2, certainty=0.8
                    )
                    assert result["served"]["replica"] == "r1"
                router.restore_replica("r0")
                assert set(router.replicas_up) == {"r0", "r1"}
                await client.close()
            finally:
                await stop_cluster(router, replicas)

        run(scenario())

    def test_aggregated_stats_and_metrics(self, trained_metasearcher):
        async def scenario():
            router, replicas = await start_cluster(trained_metasearcher, 2)
            try:
                client = await GatewayClient.connect(
                    "127.0.0.1", router.port
                )
                await client.search("breast cancer", k=2, certainty=0.9)
                stats = await client.stats()
                metrics = await client.call({"op": "metrics"})
                await client.close()
                return stats, metrics
            finally:
                await stop_cluster(router, replicas)

        stats, metrics = run(scenario())
        assert set(stats["replicas"]) == {"r0", "r1"}
        assert stats["router"]["counters"]["router_searches"] == 1
        assert stats["router"]["replicas_up"] == ["r0", "r1"]
        for name, replica_stats in stats["replicas"].items():
            assert "service" in replica_stats
            assert "gateway" in replica_stats
        assert set(metrics["replicas"]) == {"r0", "r1"}

    def test_router_trace_collects_cross_process_tree(
        self, trained_metasearcher
    ):
        async def scenario():
            replicas = [
                InProcessReplica(
                    "r0",
                    trained_metasearcher,
                    service_config=ServiceConfig(
                        max_workers=4, batch_size=2, trace=True
                    ),
                )
            ]
            await replicas[0].start()
            router = ClusterRouter(
                replicas, RouterConfig(ping_interval_s=0, trace=True)
            )
            await router.start()
            try:
                client = await GatewayClient.connect(
                    "127.0.0.1", router.port
                )
                result = await client.search(
                    "breast cancer", k=2, certainty=0.9
                )
                trace = await client.call({"op": "trace"})
                await client.close()
                return result, trace
            finally:
                await stop_cluster(router, replicas)

        result, trace = run(scenario())
        # spans were replayed into the router's sink, then stripped
        assert "spans" not in result["served"]
        assert trace["enabled"] is True
        names = {span["name"] for span in trace["spans"]}
        assert {"router.request", "gateway.request", "service.serve"} <= names
        trace_ids = {span["trace_id"] for span in trace["spans"]}
        assert len(trace_ids) == 1  # one tree across both "processes"

    def test_config_validation(self, trained_metasearcher):
        with pytest.raises(ConfigurationError):
            RouterConfig(points_per_node=0)
        with pytest.raises(ConfigurationError):
            RouterConfig(unhealthy_after=0)
        with pytest.raises(ConfigurationError):
            ClusterRouter([])

        class FakeReplica:
            def __init__(self, name):
                self.name = name
                self.host = "127.0.0.1"
                self.port = 1

        with pytest.raises(ConfigurationError):
            ClusterRouter([FakeReplica("a/b")])
        with pytest.raises(ConfigurationError):
            ClusterRouter([FakeReplica("a"), FakeReplica("a")])


# -- gateway stats op ----------------------------------------------------------


class TestGatewayStatsOp:
    def test_stats_sections_and_sync_wrapper(self, trained_metasearcher):
        async def scenario():
            service = make_service(trained_metasearcher)
            gateway = MetasearchGateway(service, GatewayConfig())
            await gateway.start()
            try:
                client = await GatewayClient.connect(
                    "127.0.0.1", gateway.port
                )
                await client.search("breast cancer", k=2, certainty=0.9)
                stats = await client.stats()
                await client.close()
                return stats
            finally:
                await gateway.stop()
                service.shutdown()

        stats = run(scenario())
        assert set(stats) == {"service", "gateway", "trace"}
        assert stats["service"]["counters"]["queries_served"] >= 1
        gw = stats["gateway"]
        assert set(gw) == {
            "draining", "inflight", "queued", "open_tasks",
            "listening", "results_held",
        }
        assert gw["listening"] is True
        assert gw["draining"] is False
        assert stats["trace"]["enabled"] in (True, False)
        assert isinstance(stats["trace"]["span_names"], dict)

    def test_sync_client_stats_and_fetch(self, trained_metasearcher):
        import threading

        service = make_service(trained_metasearcher)
        gateway = MetasearchGateway(service, GatewayConfig())
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            asyncio.run_coroutine_threadsafe(
                gateway.start(), loop
            ).result(timeout=10)
            with SyncGatewayClient("127.0.0.1", gateway.port) as client:
                result = client.search(
                    "breast cancer", k=2, certainty=0.9, cursor=True
                )
                handle = result["handle"]
                page = client.fetch(handle["run_id"], limit=10)
                stats = client.stats()
            assert page["done"] is True
            assert len(page["rows"]) == handle["total"]
            assert stats["gateway"]["results_held"] == 1
        finally:
            asyncio.run_coroutine_threadsafe(
                gateway.stop(), loop
            ).result(timeout=10)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            loop.close()
            service.shutdown()


# -- client retry on shedding --------------------------------------------------


class TestRetryOnOverload:
    def test_backoff_is_deterministic_and_bounded(self):
        first = retry_backoff_s(100.0, 1, "query a")
        assert first == retry_backoff_s(100.0, 1, "query a")
        assert first != retry_backoff_s(100.0, 2, "query a")
        assert first != retry_backoff_s(100.0, 1, "query b")
        assert 0.1 <= first < 0.125
        # no hint -> 50 ms base
        assert 0.05 <= retry_backoff_s(None, 1, "q") < 0.0625

    def test_search_retries_shed_requests(self, trained_metasearcher):
        """Injected shedding: tiny gateway, slow backend, opt-in retry."""
        from tests.test_gateway import slow_down

        async def scenario():
            service = make_service(trained_metasearcher)
            slow_down(service, 0.05)
            gateway = MetasearchGateway(
                service,
                GatewayConfig(
                    max_inflight=1, max_queue=0, shed_retry_after_ms=20.0
                ),
            )
            await gateway.start()
            try:
                client = await GatewayClient.connect(
                    "127.0.0.1", gateway.port
                )
                queries = [f"heart disease {i}" for i in range(4)]
                results = await asyncio.gather(
                    *(
                        client.search(
                            q, k=2, certainty=0.8, retry_overloaded=8
                        )
                        for q in queries
                    )
                )
                snapshot = service.snapshot()
                await client.close()
                return results, snapshot
            finally:
                await gateway.stop()
                service.shutdown()

        results, snapshot = run(scenario())
        assert len(results) == 4
        assert all(r["answer"]["selected"] for r in results)
        # the gateway really shed: retries did the recovering
        assert snapshot["counters"]["gateway_shed"] >= 1

    def test_without_optin_shed_surfaces_as_error(self, trained_metasearcher):
        from tests.test_gateway import slow_down

        async def scenario():
            service = make_service(trained_metasearcher)
            slow_down(service, 0.05)
            gateway = MetasearchGateway(
                service, GatewayConfig(max_inflight=1, max_queue=0)
            )
            await gateway.start()
            try:
                client = await GatewayClient.connect(
                    "127.0.0.1", gateway.port
                )
                outcomes = await asyncio.gather(
                    *(
                        client.search(f"cancer {i}", k=2, certainty=0.8)
                        for i in range(4)
                    ),
                    return_exceptions=True,
                )
                await client.close()
                return outcomes
            finally:
                await gateway.stop()
                service.shutdown()

        outcomes = run(scenario())
        shed = [
            o
            for o in outcomes
            if isinstance(o, GatewayError)
            and o.code is ErrorCode.OVERLOADED
        ]
        assert shed
        assert all(o.retry_after_ms is not None for o in shed)
