"""Special functions: the regularized incomplete gamma function.

Implements P(a, x) and Q(a, x) with the classic Numerical-Recipes pair of
algorithms — a power series for x < a + 1 and a Lentz continued fraction
otherwise — which is accurate to ~1e-12 over the chi-square range used
here. ``chi2_sf`` builds the chi-square survival function on top.
"""

from __future__ import annotations

import math

__all__ = ["regularized_gamma_p", "regularized_gamma_q", "chi2_sf"]

_MAX_ITERATIONS = 500
_EPSILON = 1e-14
_TINY = 1e-300


def _gamma_p_series(a: float, x: float) -> float:
    """Series expansion of P(a, x); converges fast for x < a + 1."""
    term = 1.0 / a
    total = term
    denom = a
    for _ in range(_MAX_ITERATIONS):
        denom += 1.0
        term *= x / denom
        total += term
        if abs(term) < abs(total) * _EPSILON:
            break
    log_prefactor = a * math.log(x) - x - math.lgamma(a)
    return total * math.exp(log_prefactor)


def _gamma_q_continued_fraction(a: float, x: float) -> float:
    """Lentz continued fraction for Q(a, x); converges for x >= a + 1."""
    b = x + 1.0 - a
    c = 1.0 / _TINY
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < _TINY:
            d = _TINY
        c = b + an / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            break
    log_prefactor = a * math.log(x) - x - math.lgamma(a)
    return h * math.exp(log_prefactor)


def regularized_gamma_p(a: float, x: float) -> float:
    """The regularized lower incomplete gamma function P(a, x).

    P(a, x) = γ(a, x) / Γ(a), with P(a, 0) = 0 and P(a, ∞) = 1.
    """
    if a <= 0.0:
        raise ValueError(f"a must be positive, got {a}")
    if x < 0.0:
        raise ValueError(f"x must be non-negative, got {x}")
    if x == 0.0:
        return 0.0
    if x < a + 1.0:
        return min(1.0, max(0.0, _gamma_p_series(a, x)))
    return min(1.0, max(0.0, 1.0 - _gamma_q_continued_fraction(a, x)))


def regularized_gamma_q(a: float, x: float) -> float:
    """The regularized upper incomplete gamma function Q(a, x) = 1 − P."""
    if a <= 0.0:
        raise ValueError(f"a must be positive, got {a}")
    if x < 0.0:
        raise ValueError(f"x must be non-negative, got {x}")
    if x == 0.0:
        return 1.0
    if x < a + 1.0:
        return min(1.0, max(0.0, 1.0 - _gamma_p_series(a, x)))
    return min(1.0, max(0.0, _gamma_q_continued_fraction(a, x)))


def chi2_sf(statistic: float, dof: int) -> float:
    """Chi-square survival function P[X >= statistic] with *dof* degrees.

    This is the p-value of a Pearson goodness-of-fit test.
    """
    if dof <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {dof}")
    if statistic < 0.0:
        raise ValueError(f"statistic must be non-negative, got {statistic}")
    return regularized_gamma_q(dof / 2.0, statistic / 2.0)
