"""Serve-time observation capture: the input side of the closed loop.

Every probe the serving stack executes is a free labeled training
sample: the selector computed r̂(db, q) to build the RD, the probe
returned the true r(db, q), and the pair's relative error is exactly
what offline ED training records (Eq. 2). The offline phase pays for
these samples with dedicated training probes; the online phase gets
them as a by-product of answering queries — discarding them, as the
serving layer did before this module, throws away the only signal that
can tell a drifted database from a stale model.

:class:`ObservingProber` is the tap: it wraps whatever
:class:`~repro.core.probing.BatchProber` the service already uses and
feeds each observation into an :class:`ObservationSink`, a thread-safe
per-database sliding window. Both execution paths flow through it —
the in-process APro loop probes through ``apro.prober`` directly, and
pool workers' probe rounds execute parent-side through the same
attribute (see ``MetasearchService._pool_probe``) — so one wrapper
covers the whole serving stack.

Caveat: when the probe executor degrades a failed database to its
point estimate, the "observed" value *is* r̂, so the sample's error is
≈ 0. Under heavy fault injection this biases windows toward "estimator
is perfect"; the drift detector's minimum-sample floor keeps isolated
fallbacks from mattering.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.errors import relative_error
from repro.core.query_types import QueryType
from repro.core.selection import RDBasedSelector
from repro.exceptions import ConfigurationError
from repro.service.metrics import MetricsRegistry
from repro.types import Query

__all__ = ["Observation", "ObservationSink", "ObservingProber"]


@dataclass(frozen=True, slots=True)
class Observation:
    """One serve-time probe outcome, in training-sample form."""

    database: str
    query_type: QueryType
    estimate: float
    actual: float
    error: float


class ObservationSink:
    """Thread-safe per-database sliding windows of probe observations.

    The window bound (``maxlen`` of each deque) is what makes the
    accumulated EDs *recent*: old samples fall out as new ones arrive,
    so a refreshed model tracks the database as it is now, not as it
    was over the service's whole lifetime.

    Parameters
    ----------
    window:
        Samples retained per database (the sliding-window length).
    metrics:
        Optional registry; every recorded sample increments
        ``adapt_observations_total``.
    """

    def __init__(
        self, window: int = 256, metrics: MetricsRegistry | None = None
    ) -> None:
        if window < 1:
            raise ConfigurationError(
                f"observation window must be >= 1, got {window}"
            )
        self._window = window
        self._metrics = metrics
        self._per_db: dict[str, deque[Observation]] = {}
        self._total = 0
        self._lock = threading.Lock()

    @property
    def window(self) -> int:
        """Samples retained per database."""
        return self._window

    @property
    def total(self) -> int:
        """Lifetime number of recorded observations (not windowed)."""
        with self._lock:
            return self._total

    def record(self, observation: Observation) -> None:
        """Append one observation to its database's window."""
        with self._lock:
            window = self._per_db.get(observation.database)
            if window is None:
                window = self._per_db[observation.database] = deque(
                    maxlen=self._window
                )
            window.append(observation)
            self._total += 1
        if self._metrics is not None:
            self._metrics.counter("adapt_observations_total").inc()

    def databases(self) -> list[str]:
        """Databases with at least one windowed observation, sorted."""
        with self._lock:
            return sorted(self._per_db)

    def count(self, database: str) -> int:
        """Observations currently windowed for *database*."""
        with self._lock:
            window = self._per_db.get(database)
            return len(window) if window else 0

    def observations(self, database: str) -> tuple[Observation, ...]:
        """Snapshot of *database*'s window, oldest first."""
        with self._lock:
            window = self._per_db.get(database)
            return tuple(window) if window else ()

    def clear(self) -> None:
        """Drop every window (lifetime total is preserved)."""
        with self._lock:
            self._per_db.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ObservationSink(window={self._window}, "
                f"databases={len(self._per_db)}, total={self._total})"
            )


class ObservingProber:
    """A :class:`~repro.core.probing.BatchProber` that records samples.

    Wraps an inner prober; every observation that comes back is paired
    with the estimate and query type the selector would assign it
    (estimates depend only on summaries and the estimator, which
    serve-time adaptation never changes, so the pairing is stable
    across model swaps) and recorded into the sink. Probe semantics are
    untouched — same indices in, same observations out.
    """

    def __init__(
        self,
        inner,
        selector: RDBasedSelector,
        sink: ObservationSink,
    ) -> None:
        self._inner = inner
        self._selector = selector
        self._sink = sink

    @property
    def inner(self):
        """The wrapped prober (tests unwrap through this)."""
        return self._inner

    @property
    def sink(self) -> ObservationSink:
        """Where the samples go."""
        return self._sink

    def retarget(self, selector: RDBasedSelector) -> None:
        """Point the estimate/type lookup at a new selector.

        Called after a model swap. Estimates are swap-invariant, so
        this only matters for object hygiene — the old selector would
        keep producing identical samples.
        """
        self._selector = selector

    def probe_batch(
        self, query: Query, indices: Sequence[int]
    ) -> Sequence[float]:
        observations = self._inner.probe_batch(query, indices)
        selector = self._selector
        floor = selector.error_model.estimate_floor
        classifier = selector.classifier
        for index, actual in zip(indices, observations):
            name = selector.mediator[index].name
            estimate = selector.estimate(name, query)
            self._sink.record(
                Observation(
                    database=name,
                    query_type=classifier.classify(query, estimate),
                    estimate=estimate,
                    actual=float(actual),
                    error=relative_error(
                        float(actual), estimate, estimate_floor=floor
                    ),
                )
            )
        return observations

    def __repr__(self) -> str:
        return f"ObservingProber(inner={self._inner!r})"
