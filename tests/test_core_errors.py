"""Unit tests for the error model: Eq. 2, EDs, query types."""

import pytest

from repro.core.errors import (
    DEFAULT_ERROR_EDGES,
    DEFAULT_ESTIMATE_FLOOR,
    ErrorDistribution,
    relative_error,
)
from repro.core.query_types import QueryType, QueryTypeClassifier
from repro.exceptions import ConfigurationError, DistributionError, TrainingError
from repro.types import Query


class TestRelativeError:
    def test_paper_fig3b(self):
        # Fig. 3(b): estimated 650, actual 1300 -> +100 % error
        # ("the estimator underestimates db2's relevancy by 100 %").
        assert relative_error(1300, 650) == pytest.approx(1.0)

    def test_overestimate_is_negative(self):
        assert relative_error(50, 100) == pytest.approx(-0.5)

    def test_actual_zero_is_minus_one(self):
        assert relative_error(0, 200) == pytest.approx(-1.0)

    def test_exact_estimate_zero_error(self):
        assert relative_error(42, 42) == 0.0

    def test_floor_applies_to_small_estimates(self):
        # With estimate 0.001 << floor, the error is (r - r̂)/floor.
        error = relative_error(3, 0.001, estimate_floor=0.05)
        assert error == pytest.approx((3 - 0.001) / 0.05)

    def test_floor_does_not_apply_above(self):
        assert relative_error(20, 10, estimate_floor=0.05) == pytest.approx(1.0)

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            relative_error(1, 1, estimate_floor=0.0)

    def test_negative_actual_rejected(self):
        with pytest.raises(ValueError):
            relative_error(-1, 10)

    def test_errors_bounded_below(self):
        # Actual relevancy >= 0 implies error >= -1 whenever r̂ >= floor.
        for actual in (0, 1, 7, 1000):
            assert relative_error(actual, 10) >= -1.0


class TestErrorDistribution:
    def test_observe_and_distribution(self):
        ed = ErrorDistribution()
        ed.observe_all([-0.5, -0.5, 0.0, 1.5])
        assert ed.sample_count == 4
        dist = ed.to_distribution()
        assert dist.support_size >= 2
        assert sum(p for _v, p in dist.atoms()) == pytest.approx(1.0)

    def test_empty_distribution_raises(self):
        with pytest.raises(TrainingError):
            ErrorDistribution().to_distribution()

    def test_mean_error_tracks_bias(self):
        ed = ErrorDistribution()
        ed.observe_all([1.0] * 10)
        assert ed.mean_error() == pytest.approx(1.0, abs=0.01)

    def test_bin_representative_is_sample_mean(self):
        # Samples 2.5 and 3.5 land in the (2, 4] bin; the distribution
        # should place that bin's atom at their mean, 3.0.
        ed = ErrorDistribution()
        ed.observe_all([2.5, 3.5])
        dist = ed.to_distribution()
        assert dist.prob_of(3.0) == pytest.approx(1.0)

    def test_merged_with(self):
        a = ErrorDistribution()
        a.observe_all([-1.0, -1.0])
        b = ErrorDistribution()
        b.observe_all([0.0, 0.0])
        merged = a.merged_with(b)
        assert merged.sample_count == 4
        assert a.sample_count == 2  # originals untouched

    def test_chi2_same_distribution_accepts(self):
        a = ErrorDistribution()
        b = ErrorDistribution()
        samples = [-0.9, -0.5, 0.0, 0.3, 1.5, 3.0] * 20
        a.observe_all(samples)
        b.observe_all(samples)
        assert a.chi2_against(b).p_value == pytest.approx(1.0)

    def test_chi2_different_distribution_rejects(self):
        a = ErrorDistribution()
        a.observe_all([-1.0] * 100)
        b = ErrorDistribution()
        b.observe_all([5.0] * 100)
        assert a.chi2_against(b).p_value < 0.01

    def test_chi2_mismatched_edges(self):
        a = ErrorDistribution(edges=(0.0, 1.0))
        b = ErrorDistribution(edges=(0.0, 2.0))
        a.observe(0.5)
        b.observe(0.5)
        with pytest.raises(DistributionError):
            a.chi2_against(b)

    def test_default_edges_cover_minus_one(self):
        assert DEFAULT_ERROR_EDGES[0] == -1.0
        assert DEFAULT_ESTIMATE_FLOOR > 0


class TestQueryType:
    def test_ordering(self):
        assert QueryType(2, 0) < QueryType(2, 1) < QueryType(3, 0)

    def test_label(self):
        assert "2-term" in QueryType(2, 1).label()
        label = QueryType(2, 0).label(thresholds=(10.0,))
        assert "r̂ < 10" in label
        label = QueryType(2, 1).label(thresholds=(10.0,))
        assert "r̂ >= 10" in label


class TestQueryTypeClassifier:
    def test_paper_tree_two_bands(self):
        classifier = QueryTypeClassifier(
            estimate_thresholds=QueryTypeClassifier.PAPER_THRESHOLDS
        )
        assert classifier.num_bands == 2
        query = Query(("breast", "cancer"))
        assert classifier.classify(query, 5.0).estimate_band == 0
        assert classifier.classify(query, 10.0).estimate_band == 1
        assert classifier.classify(query, 500.0).estimate_band == 1

    def test_default_tree_band_boundaries(self):
        classifier = QueryTypeClassifier()
        bands = [classifier.band_of(e) for e in (0.0, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0)]
        assert bands == [0, 1, 2, 3, 4, 5, 6]

    def test_term_count_clamping(self):
        classifier = QueryTypeClassifier()
        assert classifier.classify(Query(("a",)), 0.0).num_terms == 2
        four = Query(("a", "b", "c", "d"))
        assert classifier.classify(four, 0.0).num_terms == 3

    def test_all_types_count(self):
        classifier = QueryTypeClassifier(estimate_thresholds=(10.0,))
        assert len(classifier.all_types()) == 4  # 2 term counts x 2 bands

    def test_split_disabled(self):
        classifier = QueryTypeClassifier(split_on_estimate=False)
        assert classifier.num_bands == 1
        assert classifier.band_of(1e9) == 0
        assert len(classifier.all_types()) == 2

    def test_scalar_threshold_accepted(self):
        classifier = QueryTypeClassifier(estimate_thresholds=10.0)
        assert classifier.estimate_thresholds == (10.0,)

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            QueryTypeClassifier(estimate_thresholds=())
        with pytest.raises(ConfigurationError):
            QueryTypeClassifier(estimate_thresholds=(5.0, 5.0))
        with pytest.raises(ConfigurationError):
            QueryTypeClassifier(estimate_thresholds=(-1.0,))
        with pytest.raises(ConfigurationError):
            QueryTypeClassifier(term_counts=())

    def test_label_uses_thresholds(self):
        classifier = QueryTypeClassifier(estimate_thresholds=(1.0, 10.0))
        label = classifier.label(QueryType(2, 1))
        assert "1" in label and "10" in label
