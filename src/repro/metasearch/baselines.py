"""Estimation-based database selection — the paper's baseline (§6.1).

Rank databases by the point estimate r̂(db, q) and take the top k, ties
broken by mediation order. With the term-independence estimator this is
exactly the baseline row of the paper's Fig. 15; with the CORI estimator
it is the classic CORI selection.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.correctness import rank_by_relevancy
from repro.exceptions import SelectionError
from repro.hiddenweb.mediator import Mediator
from repro.summaries.estimators import RelevancyEstimator
from repro.summaries.summary import ContentSummary
from repro.types import Query

__all__ = ["EstimationBasedSelector"]


class EstimationBasedSelector:
    """Top-k by estimated relevancy, no probabilistic correction."""

    def __init__(
        self,
        mediator: Mediator,
        summaries: Mapping[str, ContentSummary],
        estimator: RelevancyEstimator,
    ) -> None:
        missing = [db.name for db in mediator if db.name not in summaries]
        if missing:
            raise SelectionError(f"missing summaries for databases: {missing}")
        self._mediator = mediator
        self._summaries = dict(summaries)
        self._estimator = estimator

    def estimates(self, query: Query) -> list[float]:
        """r̂ for every database, in mediation order."""
        return [
            self._estimator.estimate(self._summaries[db.name], query)
            for db in self._mediator
        ]

    def select(self, query: Query, k: int) -> tuple[str, ...]:
        """Names of the k databases with the highest estimates."""
        winners = rank_by_relevancy(self.estimates(query), k)
        return tuple(self._mediator[i].name for i in winners)

    def __repr__(self) -> str:
        return f"EstimationBasedSelector(estimator={self._estimator!r})"
