"""Extension — robustness to database drift.

The offline phase (summaries + error model) goes stale as databases
churn; probes always observe current truth. Expected shape: stale
summary-only selection degrades noticeably, and APro recovers most of
the loss because every probe is fresh evidence.
"""

from __future__ import annotations

from repro.experiments.drift import drift_robustness
from repro.experiments.reporting import format_table


def test_extension_drift_robustness(benchmark, paper_context, paper_pipeline):
    rows = benchmark.pedantic(
        drift_robustness,
        args=(paper_context, paper_pipeline),
        kwargs={"k": 1, "certainty": 0.8, "num_queries": 80},
        rounds=1,
        iterations=1,
    )
    print()
    print("=" * 72)
    print("Extension — selection on drifted databases with stale training")
    print("=" * 72)
    print(
        format_table(
            ("configuration", "Avg(Cor_a)", "Avg(Cor_p)", "avg probes"),
            [
                (
                    r.configuration,
                    f"{r.avg_absolute:.3f}",
                    f"{r.avg_partial:.3f}",
                    f"{r.avg_probes:.2f}",
                )
                for r in rows
            ],
        )
    )
    stale_baseline, stale_rd, stale_apro = rows
    # Probing must recover quality on drifted content.
    assert stale_apro.avg_absolute > stale_rd.avg_absolute
    assert stale_apro.avg_absolute > stale_baseline.avg_absolute
