"""Tests for the probabilistic top-k machinery.

Includes exact hand-computed cases (the paper's Example 4), Monte-Carlo
cross-validation, and hypothesis property tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topk import CorrectnessMetric, TopKComputer
from repro.exceptions import SelectionError
from repro.stats.distribution import DiscreteDistribution as D

# Every test in this module runs under both numeric backends.
pytestmark = pytest.mark.usefixtures("numeric_backend")


def paper_example4_rds():
    """The RDs of the paper's Example 4 / Fig. 5(d).

    db1: 500 w.p. 0.4, 1000 w.p. 0.5, 1500 w.p. 0.1
    db2: 650 w.p. 0.1, 1300 w.p. 0.9
    The paper concludes P(db2 is top-1) = 0.85.
    """
    db1 = D.from_pairs([(500.0, 0.4), (1000.0, 0.5), (1500.0, 0.1)])
    db2 = D.from_pairs([(650.0, 0.1), (1300.0, 0.9)])
    return [db1, db2]


class TestPaperExamples:
    def test_example4_certainty(self):
        computer = TopKComputer(paper_example4_rds(), k=1)
        # P(db2 beats db1): db2=1300 (0.9) beats 500 and 1000 (0.9) ->
        # 0.81; db2=650 (0.1) beats 500 (0.4) -> 0.04. Total 0.85.
        assert computer.prob_set_is_topk([1]) == pytest.approx(0.85)
        best, score = computer.best_set(CorrectnessMetric.ABSOLUTE)
        assert best == (1,)
        assert score == pytest.approx(0.85)

    def test_example4_after_probe(self):
        # Fig. 5(e): probing db1 observes 500; db2 is now certainly ahead.
        rds = paper_example4_rds()
        rds[0] = D.impulse(500.0)
        computer = TopKComputer(rds, k=1)
        best, score = computer.best_set(CorrectnessMetric.ABSOLUTE)
        assert best == (1,)
        assert score == pytest.approx(1.0)

    def test_example4_override_matches_probe(self):
        computer = TopKComputer(paper_example4_rds(), k=1)
        atoms = computer.atoms_of(0)
        atom_500 = next(t for t, v, _p in atoms if v == 500.0)
        _best, score = computer.best_set(
            CorrectnessMetric.ABSOLUTE, override=(0, atom_500)
        )
        assert score == pytest.approx(1.0)


class TestBasicProperties:
    def test_all_impulses_certain(self):
        rds = [D.impulse(v) for v in (10.0, 5.0, 1.0)]
        computer = TopKComputer(rds, k=2)
        best, score = computer.best_set(CorrectnessMetric.ABSOLUTE)
        assert best == (0, 1)
        assert score == pytest.approx(1.0)

    def test_k_equals_n(self):
        rds = [D.impulse(1.0), D.impulse(2.0)]
        computer = TopKComputer(rds, k=2)
        best, score = computer.best_set(CorrectnessMetric.ABSOLUTE)
        assert best == (0, 1)
        assert score == 1.0

    def test_marginals_sum_to_k(self):
        rng = np.random.default_rng(0)
        rds = [
            D.from_pairs(
                (float(v), float(p))
                for v, p in zip(
                    rng.choice(20, size=4, replace=False), rng.random(4) + 0.1
                )
            )
            for _ in range(6)
        ]
        for k in (1, 2, 4):
            marginals = TopKComputer(rds, k).marginals()
            assert marginals.sum() == pytest.approx(k, abs=1e-9)

    def test_tie_break_lower_index_wins(self):
        rds = [D.impulse(5.0), D.impulse(5.0)]
        computer = TopKComputer(rds, k=1)
        best, score = computer.best_set(CorrectnessMetric.ABSOLUTE)
        assert best == (0,)
        assert score == pytest.approx(1.0)
        # And the marginals agree: db0 wins the tie with certainty.
        marginals = computer.marginals()
        assert marginals[0] == pytest.approx(1.0)
        assert marginals[1] == pytest.approx(0.0)

    def test_partial_expectation_is_mean_of_marginals(self):
        rds = paper_example4_rds() + [D.impulse(700.0)]
        computer = TopKComputer(rds, k=2)
        marginals = computer.marginals()
        value = computer.expected_correctness(
            [0, 2], CorrectnessMetric.PARTIAL
        )
        assert value == pytest.approx((marginals[0] + marginals[2]) / 2)

    def test_absolute_leq_partial(self):
        rds = paper_example4_rds() + [
            D.from_pairs([(100.0, 0.5), (900.0, 0.5)])
        ]
        computer = TopKComputer(rds, k=2)
        for subset in ([0, 1], [0, 2], [1, 2]):
            absolute = computer.expected_correctness(
                subset, CorrectnessMetric.ABSOLUTE
            )
            partial = computer.expected_correctness(
                subset, CorrectnessMetric.PARTIAL
            )
            assert absolute <= partial + 1e-12

    def test_set_probabilities_sum_to_one(self):
        rds = paper_example4_rds() + [
            D.from_pairs([(100.0, 0.5), (900.0, 0.5)])
        ]
        computer = TopKComputer(rds, k=2)
        from itertools import combinations

        total = sum(
            computer.prob_set_is_topk(list(subset))
            for subset in combinations(range(3), 2)
        )
        assert total == pytest.approx(1.0)

    def test_invalid_k(self):
        rds = [D.impulse(1.0)]
        with pytest.raises(SelectionError):
            TopKComputer(rds, k=0)
        with pytest.raises(SelectionError):
            TopKComputer(rds, k=2)

    def test_invalid_subset(self):
        computer = TopKComputer(paper_example4_rds(), k=1)
        with pytest.raises(SelectionError):
            computer.prob_set_is_topk([0, 1])
        with pytest.raises(SelectionError):
            computer.prob_set_is_topk([7])

    def test_invalid_override(self):
        computer = TopKComputer(paper_example4_rds(), k=1)
        atom_of_db1 = computer.atoms_of(1)[0][0]
        with pytest.raises(SelectionError):
            computer.prob_set_is_topk([0], override=(0, atom_of_db1))

    def test_exhaustive_vs_hillclimb(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            rds = [
                D.from_pairs(
                    (float(v), float(p))
                    for v, p in zip(
                        rng.choice(15, size=3, replace=False),
                        rng.random(3) + 0.05,
                    )
                )
                for _ in range(7)
            ]
            exact = TopKComputer(rds, k=3, exact_set_limit=100)
            climber = TopKComputer(rds, k=3, exact_set_limit=1, swap_width=4)
            _eset, evalue = exact.best_set(CorrectnessMetric.ABSOLUTE)
            _hset, hvalue = climber.best_set(CorrectnessMetric.ABSOLUTE)
            # Hill climbing may miss the global optimum but must be close.
            assert hvalue <= evalue + 1e-12
            assert hvalue >= 0.8 * evalue


class TestMonteCarloAgreement:
    @staticmethod
    def _mc_topk(rds, k, n_samples, seed):
        rng = np.random.default_rng(seed)
        n = len(rds)
        samples = np.stack([rd.sample(rng, n_samples) for rd in rds])
        # Tie-break: lower index wins, encoded as a tiny index penalty.
        keys = samples - np.arange(n)[:, None] * 1e-9
        order = np.argsort(-keys, axis=0, kind="stable")
        return order[:k, :]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 2])
    def test_marginals_match_simulation(self, seed, k):
        rng = np.random.default_rng(seed)
        n = 5
        rds = []
        for _ in range(n):
            size = int(rng.integers(1, 4))
            values = rng.choice(8, size=size, replace=False)
            probs = rng.random(size) + 0.1
            rds.append(
                D.from_pairs(
                    (float(v), float(p)) for v, p in zip(values, probs)
                )
            )
        computer = TopKComputer(rds, k)
        marginals = computer.marginals()
        topk = self._mc_topk(rds, k, 150_000, seed + 100)
        mc = np.array([(topk == i).any(axis=0).mean() for i in range(n)])
        assert np.abs(marginals - mc).max() < 0.01

    @pytest.mark.parametrize("seed", [4, 5])
    def test_set_probability_matches_simulation(self, seed):
        rng = np.random.default_rng(seed)
        n, k = 5, 2
        rds = [
            D.from_pairs(
                (float(v), float(p))
                for v, p in zip(
                    rng.choice(8, size=3, replace=False), rng.random(3) + 0.1
                )
            )
            for _ in range(n)
        ]
        computer = TopKComputer(rds, k)
        best, claimed = computer.best_set(CorrectnessMetric.ABSOLUTE)
        topk = self._mc_topk(rds, k, 150_000, seed + 100)
        hit = np.isin(topk, list(best)).all(axis=0).mean()
        assert claimed == pytest.approx(hit, abs=0.01)


@st.composite
def random_rds(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    rds = []
    for _ in range(n):
        size = draw(st.integers(min_value=1, max_value=3))
        values = draw(
            st.lists(
                st.integers(min_value=0, max_value=10),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        weights = draw(
            st.lists(
                st.floats(min_value=0.05, max_value=1.0),
                min_size=size,
                max_size=size,
            )
        )
        rds.append(
            D.from_pairs(
                (float(v), float(w)) for v, w in zip(values, weights)
            )
        )
    return rds


class TestHypothesisProperties:
    @given(random_rds(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_marginals_are_probabilities_summing_to_k(self, rds, k):
        k = min(k, len(rds))
        marginals = TopKComputer(rds, k).marginals()
        assert np.all(marginals >= -1e-12)
        assert np.all(marginals <= 1 + 1e-12)
        assert marginals.sum() == pytest.approx(k, abs=1e-8)

    @given(random_rds())
    @settings(max_examples=40, deadline=None)
    def test_best_set_score_is_max_marginal_for_k1(self, rds):
        computer = TopKComputer(rds, k=1)
        marginals = computer.marginals()
        best, score = computer.best_set(CorrectnessMetric.ABSOLUTE)
        assert score == pytest.approx(float(marginals.max()), abs=1e-9)
        assert marginals[best[0]] == pytest.approx(score, abs=1e-9)

    @given(random_rds())
    @settings(max_examples=40, deadline=None)
    def test_usefulness_at_least_current_best(self, rds):
        """E[max after probe] >= max E (the greedy policy's soundness)."""
        from repro.core.policies import GreedyUsefulnessPolicy

        computer = TopKComputer(rds, k=1)
        _best, current = computer.best_set(CorrectnessMetric.ABSOLUTE)
        policy = GreedyUsefulnessPolicy()
        for database in range(len(rds)):
            usefulness = policy.usefulness(
                computer, database, CorrectnessMetric.ABSOLUTE
            )
            assert usefulness >= current - 1e-9

    @given(random_rds())
    @settings(max_examples=40, deadline=None)
    def test_probing_every_database_reaches_certainty(self, rds):
        impulses = [D.impulse(rd.mean()) for rd in rds]
        computer = TopKComputer(impulses, k=1)
        _best, score = computer.best_set(CorrectnessMetric.ABSOLUTE)
        assert score == pytest.approx(1.0)


class TestOverrideMemoInterleaving:
    """The override-row cache must survive A→B→A access patterns.

    The pre-batching implementation kept a single-slot override memo, so
    alternating overrides silently recomputed (and could never be
    cross-checked for staleness). The batched usefulness sweep
    interleaves overrides of different databases heavily; these tests
    pin the per-override cache's correctness under that pattern.
    """

    def _three_db_computer(self, k=1):
        rds = [
            D.from_pairs([(500.0, 0.4), (1000.0, 0.5), (1500.0, 0.1)]),
            D.from_pairs([(650.0, 0.1), (1300.0, 0.9)]),
            D.from_pairs([(800.0, 0.6), (1200.0, 0.4)]),
        ]
        return TopKComputer(rds, k)

    def test_interleaved_marginals_stable(self):
        computer = self._three_db_computer()
        atom_a = computer.atoms_of(0)[1][0]
        atom_b = computer.atoms_of(1)[1][0]
        first_a = computer.marginals(override=(0, atom_a))
        first_b = computer.marginals(override=(1, atom_b))
        again_a = computer.marginals(override=(0, atom_a))
        again_b = computer.marginals(override=(1, atom_b))
        np.testing.assert_array_equal(first_a, again_a)
        np.testing.assert_array_equal(first_b, again_b)
        # Cross-check against computers that never interleaved.
        solo = self._three_db_computer()
        np.testing.assert_allclose(
            solo.marginals(override=(0, atom_a)), first_a, atol=1e-12
        )
        solo = self._three_db_computer()
        np.testing.assert_allclose(
            solo.marginals(override=(1, atom_b)), first_b, atol=1e-12
        )

    def test_interleaved_best_set_stable(self):
        for k in (1, 2):
            computer = self._three_db_computer(k)
            atoms = [
                (db, triple[0])
                for db in range(3)
                for triple in computer.atoms_of(db)
            ]
            # Two interleaved passes over every override must agree with
            # a fresh computer evaluating each override once.
            first = [
                computer.best_set(CorrectnessMetric.ABSOLUTE, override=o)
                for o in atoms
            ]
            second = [
                computer.best_set(CorrectnessMetric.ABSOLUTE, override=o)
                for o in atoms
            ]
            assert first == second
            for override, (best, score) in zip(atoms, first):
                fresh = self._three_db_computer(k)
                fresh_best, fresh_score = fresh.best_set(
                    CorrectnessMetric.ABSOLUTE, override=override
                )
                assert best == fresh_best
                assert score == pytest.approx(fresh_score, abs=1e-12)

    def test_interleaved_prob_set_is_topk_stable(self):
        computer = self._three_db_computer(k=2)
        atom_a = computer.atoms_of(0)[0][0]
        atom_b = computer.atoms_of(2)[1][0]
        sequence = [(0, atom_a), (2, atom_b), (0, atom_a), (2, atom_b)]
        values = [
            computer.prob_set_is_topk([0, 2], override=o) for o in sequence
        ]
        assert values[0] == values[2]
        assert values[1] == values[3]
        for override, value in zip(sequence[:2], values[:2]):
            fresh = self._three_db_computer(k=2)
            assert fresh.prob_set_is_topk(
                [0, 2], override=override
            ) == pytest.approx(value, abs=1e-12)


class TestMarginalsKAtLeastN:
    def test_k_equals_n_returns_ones(self):
        computer = TopKComputer(paper_example4_rds(), k=2)
        np.testing.assert_array_equal(
            computer.marginals(), np.ones(2)
        )

    def test_defensive_copy_on_k_geq_n_path(self):
        """Mutating a returned marginals array must not corrupt the memo
        — the k >= n early return goes through the same contract as
        every other path."""
        computer = TopKComputer(paper_example4_rds(), k=2)
        first = computer.marginals()
        first[0] = -42.0
        second = computer.marginals()
        np.testing.assert_array_equal(second, np.ones(2))

    def test_defensive_copy_on_general_path(self):
        computer = TopKComputer(paper_example4_rds(), k=1)
        first = computer.marginals()
        expected = first.copy()
        first[:] = -1.0
        np.testing.assert_array_equal(computer.marginals(), expected)
