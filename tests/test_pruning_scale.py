"""Pruning soundness, the prefilter tier, RRF fusion, and the scale benches.

The load-bearing property here is the exact-mode contract: bound-based
pruning must never change a selection, a probe order, or a certainty
(beyond the repo's 1e-9 float contract) — checked both at the bound
level (``prunable_mask`` vs brute force) and end-to-end through
``Metasearcher`` on randomized corpora.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pruning import prunable_mask, support_bounds, survivor_indices
from repro.core.probing import APro
from repro.exceptions import ConfigurationError
from repro.corpus.generator import DatabaseSpec, DocumentGenerator
from repro.hiddenweb.database import RelevancyDefinition
from repro.hiddenweb.mediator import Mediator
from repro.metasearch.fusion import reciprocal_rank_fusion
from repro.metasearch.metasearcher import (
    PREFILTER_ENV,
    Metasearcher,
    MetasearcherConfig,
)
from repro.metasearch.prefilter import PrefilterTier
from repro.types import Query, ScoredDocument, SearchResult


def _brute_force_prunable(mins, maxs, k):
    """Reference: i prunable iff >= k databases certainly beat it."""
    n = len(mins)
    out = []
    for i in range(n):
        beats = sum(
            1
            for j in range(n)
            if (mins[j], -j) > (maxs[i], -i)
        )
        out.append(beats >= k)
    return np.array(out, dtype=bool)


@st.composite
def _bounds(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    pairs = [
        sorted(
            (
                draw(st.floats(0, 10, allow_nan=False, width=32)),
                draw(st.floats(0, 10, allow_nan=False, width=32)),
            )
        )
        for _ in range(n)
    ]
    mins = np.array([p[0] for p in pairs], dtype=np.float64)
    maxs = np.array([p[1] for p in pairs], dtype=np.float64)
    k = draw(st.integers(min_value=1, max_value=n + 1))
    return mins, maxs, k


class TestBounds:
    @settings(max_examples=200, deadline=None)
    @given(_bounds())
    def test_mask_matches_brute_force(self, case):
        mins, maxs, k = case
        assert np.array_equal(
            prunable_mask(mins, maxs, k),
            _brute_force_prunable(mins, maxs, k),
        )

    @settings(max_examples=200, deadline=None)
    @given(_bounds())
    def test_survivor_floor(self, case):
        mins, maxs, k = case
        survivors = survivor_indices(mins, maxs, k)
        assert len(survivors) >= min(k, len(mins))
        assert survivors == sorted(set(survivors))

    def test_ties_respect_mediation_index(self):
        # Equal values: the earlier index wins, so db 0 can prune db 1
        # but never the other way around.
        mins = np.array([5.0, 5.0])
        maxs = np.array([5.0, 5.0])
        assert list(prunable_mask(mins, maxs, 1)) == [False, True]

    def test_support_bounds_reads_atom_extremes(self, trained_pipeline):
        selector = trained_pipeline["selector"]
        query = trained_pipeline["test_queries"][0]
        rds = selector.build_rds(query)
        mins, maxs = support_bounds(rds)
        for i, rd in enumerate(rds):
            assert mins[i] == pytest.approx(min(rd.values))
            assert maxs[i] == pytest.approx(max(rd.values))


def _random_testbed(rng, registry, background, analyzer, n_databases=8):
    topics = registry.names()
    generator = DocumentGenerator(registry, background)
    corpora = {}
    for i in range(n_databases):
        dominant = topics[int(rng.integers(len(topics)))]
        other = topics[int(rng.integers(len(topics)))]
        spec = DatabaseSpec(
            name=f"rnd{i}",
            size=int(rng.integers(30, 120)),
            topic_mixture={dominant: 6.0, other: 2.0},
            background_fraction=float(rng.uniform(0.3, 0.6)),
            seed=int(rng.integers(1, 10_000)),
        )
        corpora[spec.name] = generator.generate(spec)
    return Mediator.from_documents(corpora, analyzer=analyzer)


class TestExactModeIdentity:
    def _assert_identical(self, base, exact, queries, ks):
        pruned_total = 0
        for query in queries:
            for k in ks:
                a = base.select(query, k=k, certainty=0.9)
                b = exact.select(query, k=k, certainty=0.9)
                assert a.final.names == b.final.names
                assert [(r.index, r.observed) for r in a.records] == [
                    (r.index, r.observed) for r in b.records
                ]
                assert abs(
                    a.final.expected_correctness
                    - b.final.expected_correctness
                ) <= 1e-9
                assert a.pruned_databases == 0
                pruned_total += b.pruned_databases
        return pruned_total

    def test_tiny_testbed(self, trained_metasearcher, health_queries):
        # Clone an explicitly-off base: the session fixture inherits
        # whatever REPRO_PREFILTER resolves to, and this test must
        # compare exact against a genuinely unpruned path.
        base = Metasearcher.from_trained(
            trained_metasearcher,
            MetasearcherConfig(samples_per_type=10, prune_mode="off"),
        )
        exact = Metasearcher.from_trained(
            trained_metasearcher,
            MetasearcherConfig(samples_per_type=10, prune_mode="exact"),
        )
        self._assert_identical(
            base, exact, health_queries[40:46], (1, 2, 3)
        )

    def test_randomized_corpora(
        self, registry, background_vocab, analyzer, health_queries
    ):
        # The property the exact mode rests on: across random corpora
        # and every k, pruning never excludes a database the unpruned
        # run selects — selections are bit-identical.
        rng = np.random.default_rng(4242)
        pruned_total = 0
        for _ in range(2):
            mediator = _random_testbed(
                rng, registry, background_vocab, analyzer
            )
            base = Metasearcher(
                mediator,
                MetasearcherConfig(samples_per_type=6, prune_mode="off"),
                analyzer=analyzer,
            )
            base.train(health_queries[:20])
            exact = Metasearcher.from_trained(
                base,
                MetasearcherConfig(
                    samples_per_type=6, prune_mode="exact"
                ),
            )
            pruned_total += self._assert_identical(
                base, exact, health_queries[20:24], (1, 2, 3)
            )
        # The sweep must actually exercise the pruning path.
        assert pruned_total > 0

    def test_backends_agree_under_pruning(self, trained_pipeline):
        sessions = []
        for backend in ("numpy", "python"):
            for incremental in (True, False):
                apro = APro(
                    trained_pipeline["selector"],
                    incremental=incremental,
                    backend=backend,
                    prune=True,
                )
                sessions.append(
                    [
                        apro.run(query, k=2, threshold=0.9)
                        for query in trained_pipeline["test_queries"][:4]
                    ]
                )
        reference = sessions[0]
        for other in sessions[1:]:
            for a, b in zip(reference, other):
                assert a.final.names == b.final.names
                assert [(r.index, r.observed) for r in a.records] == [
                    (r.index, r.observed) for r in b.records
                ]
                assert abs(
                    a.final.expected_correctness
                    - b.final.expected_correctness
                ) <= 1e-9


class TestPrefilterTier:
    @pytest.fixture(scope="class")
    def tier(self, tiny_mediator, analyzer, registry):
        return PrefilterTier.train(
            tiny_mediator,
            RelevancyDefinition.DOCUMENT_FREQUENCY,
            analyzer=analyzer,
            registry=registry,
        )

    def test_keep_is_deterministic_and_ascending(self, tier, analyzer):
        query = Query(terms=tuple(analyzer.analyze("cancer chemotherapy")))
        kept = tier.keep(query, top_m=2)
        assert kept == tier.keep(query, top_m=2)
        assert list(kept) == sorted(set(kept))
        assert len(kept) == 2

    def test_keep_clamps_to_population(self, tier, analyzer):
        query = Query(terms=tuple(analyzer.analyze("cancer")))
        assert len(tier.keep(query, top_m=99)) == tier.num_databases

    def test_unmatched_query_degrades_to_first_m(self, tier):
        query = Query(terms=("zzzzunseen",))
        assert tier.keep(query, top_m=2) == (0, 1)

    def test_top_m_validation(self, tier):
        with pytest.raises(ConfigurationError):
            tier.keep(Query(terms=("cancer",)), top_m=0)

    def test_state_round_trip(self, tier, analyzer):
        clone = PrefilterTier.from_state(
            json.loads(json.dumps(tier.state()))
        )
        query = Query(terms=tuple(analyzer.analyze("heart cholesterol")))
        assert np.allclose(clone.scores(query), tier.scores(query))
        assert clone.keep(query, top_m=3) == tier.keep(query, top_m=3)


class TestPruneModeConfig:
    @pytest.mark.parametrize(
        ("raw", "resolved"),
        [
            ("", "off"),
            ("0", "off"),
            ("off", "off"),
            ("1", "exact"),
            ("exact", "exact"),
            ("topm", "topm"),
        ],
    )
    def test_env_aliases(self, monkeypatch, raw, resolved):
        monkeypatch.setenv(PREFILTER_ENV, raw)
        assert MetasearcherConfig().prune_mode == resolved

    def test_env_unset_means_off(self, monkeypatch):
        monkeypatch.delenv(PREFILTER_ENV, raising=False)
        assert MetasearcherConfig().prune_mode == "off"

    def test_env_unknown_raises(self, monkeypatch):
        monkeypatch.setenv(PREFILTER_ENV, "banana")
        with pytest.raises(ConfigurationError):
            MetasearcherConfig()

    def test_explicit_mode_beats_env(self, monkeypatch):
        monkeypatch.setenv(PREFILTER_ENV, "topm")
        assert MetasearcherConfig(prune_mode="off").prune_mode == "off"

    def test_invalid_explicit_mode_raises(self):
        with pytest.raises(ConfigurationError):
            MetasearcherConfig(prune_mode="fuzzy")

    def test_top_m_validated(self):
        with pytest.raises(ConfigurationError):
            MetasearcherConfig(prefilter_top_m=0)


class TestFromTrained:
    def test_clone_selects_identically(
        self, trained_metasearcher, health_queries
    ):
        clone = Metasearcher.from_trained(trained_metasearcher)
        for query in health_queries[50:53]:
            a = trained_metasearcher.select(query, k=2, certainty=0.9)
            b = clone.select(query, k=2, certainty=0.9)
            assert a.final.names == b.final.names

    def test_topm_clone_gets_a_prefilter(
        self, trained_metasearcher, health_queries
    ):
        clone = Metasearcher.from_trained(
            trained_metasearcher,
            MetasearcherConfig(
                samples_per_type=10,
                prune_mode="topm",
                prefilter_top_m=2,
            ),
        )
        assert clone.prefilter is not None
        assert trained_metasearcher.prefilter is None
        session = clone.select(health_queries[54], k=1, certainty=0.9)
        assert session.pruned_databases >= 2  # 4 dbs, keep 2 at most

    def test_untrained_source_rejected(self, tiny_mediator, analyzer):
        fresh = Metasearcher(
            tiny_mediator,
            MetasearcherConfig(samples_per_type=10),
            analyzer=analyzer,
        )
        with pytest.raises(Exception):
            Metasearcher.from_trained(fresh)


def _page(query, *hits):
    return SearchResult(
        query=query,
        num_matches=len(hits),
        top_documents=tuple(
            ScoredDocument(doc_id=d, score=s) for d, s in hits
        ),
    )


class TestReciprocalRankFusion:
    def test_rank_then_tiebreak_order(self):
        query = Query(terms=("q",))
        results = {
            "b": _page(query, (3, 0.2)),
            "a": _page(query, (1, 0.9), (2, 0.5)),
        }
        fused = reciprocal_rank_fusion(results, limit=10)
        assert [(h.database, h.doc_id) for h in fused] == [
            ("a", 1),
            ("b", 3),
            ("a", 2),
        ]
        assert fused[0].score == pytest.approx(1.0 / 61.0)
        assert fused[2].score == pytest.approx(1.0 / 62.0)

    def test_score_scale_is_ignored(self):
        query = Query(terms=("q",))
        small = {"a": _page(query, (1, 0.001), (2, 0.0001))}
        large = {"a": _page(query, (1, 900.0), (2, 5.0))}
        assert reciprocal_rank_fusion(small) == reciprocal_rank_fusion(
            large
        )

    def test_limit_and_empty(self):
        query = Query(terms=("q",))
        results = {"a": _page(query, (1, 0.9), (2, 0.5))}
        assert len(reciprocal_rank_fusion(results, limit=1)) == 1
        assert reciprocal_rank_fusion({}) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            reciprocal_rank_fusion({}, limit=-1)
        with pytest.raises(ValueError):
            reciprocal_rank_fusion({}, k0=0.0)
