"""Tests for the weighted probe-cost extension (paper §5.2)."""

import pytest

from repro.core.policies import CostAwareGreedyPolicy, GreedyUsefulnessPolicy
from repro.core.probing import APro, ProbeRecord, ProbeSession
from repro.core.topk import CorrectnessMetric, TopKComputer
from repro.exceptions import ProbingError
from repro.stats.distribution import DiscreteDistribution as D
from repro.types import Query


def twin_rds():
    """Two databases with *identical* uncertainty.

    Under uniform costs the greedy tie goes to index 0; a cost-aware
    policy must prefer whichever is cheaper.
    """
    atoms = [(1.0, 0.5), (4.0, 0.5)]
    return [D.from_pairs(atoms), D.from_pairs(list(atoms))]


class TestCostAwareGreedyPolicy:
    def test_prefers_cheaper_equivalent_probe(self):
        computer = TopKComputer(twin_rds(), k=1)
        expensive_first = CostAwareGreedyPolicy(costs=[10.0, 1.0])
        assert expensive_first.choose(
            computer, [0, 1], CorrectnessMetric.ABSOLUTE, 0.9
        ) == 1
        cheap_first = CostAwareGreedyPolicy(costs=[1.0, 10.0])
        assert cheap_first.choose(
            computer, [0, 1], CorrectnessMetric.ABSOLUTE, 0.9
        ) == 0

    def test_uniform_costs_match_plain_greedy(self):
        rds = [
            D.from_pairs([(1.0, 0.3), (5.0, 0.7)]),
            D.from_pairs([(2.0, 0.6), (4.0, 0.4)]),
            D.impulse(0.0),
        ]
        computer = TopKComputer(rds, k=1)
        plain = GreedyUsefulnessPolicy()
        uniform = CostAwareGreedyPolicy(costs=[1.0, 1.0, 1.0])
        candidates = [0, 1]
        assert plain.choose(
            computer, candidates, CorrectnessMetric.ABSOLUTE, 0.9
        ) == uniform.choose(
            computer, candidates, CorrectnessMetric.ABSOLUTE, 0.9
        )

    def test_invalid_costs(self):
        with pytest.raises(ProbingError):
            CostAwareGreedyPolicy(costs=[])
        with pytest.raises(ProbingError):
            CostAwareGreedyPolicy(costs=[1.0, 0.0])

    def test_cost_vector_too_short(self):
        computer = TopKComputer(twin_rds(), k=1)
        policy = CostAwareGreedyPolicy(costs=[1.0])
        with pytest.raises(ProbingError):
            policy.choose(computer, [0, 1], CorrectnessMetric.ABSOLUTE, 0.9)

    def test_empty_candidates(self):
        computer = TopKComputer(twin_rds(), k=1)
        policy = CostAwareGreedyPolicy(costs=[1.0, 1.0])
        with pytest.raises(ProbingError):
            policy.choose(computer, [], CorrectnessMetric.ABSOLUTE, 0.9)


class TestSessionCost:
    def _session(self, indices):
        session = ProbeSession(
            query=Query(("a",)),
            k=1,
            metric=CorrectnessMetric.ABSOLUTE,
            threshold=0.9,
        )
        for i in indices:
            session.records.append(
                ProbeRecord(database=f"db{i}", index=i, observed=1.0)
            )
        return session

    def test_uniform_cost_counts_probes(self):
        assert self._session([0, 2, 1]).total_cost() == 3.0

    def test_weighted_cost(self):
        session = self._session([0, 2])
        assert session.total_cost([1.0, 5.0, 2.5]) == pytest.approx(3.5)

    def test_empty_session(self):
        assert self._session([]).total_cost([1.0]) == 0.0


class TestCostAwareAPro:
    def test_cost_aware_apro_spends_less_weighted_cost(self, trained_pipeline):
        """On a testbed with one very expensive database, the cost-aware
        policy should not accumulate more weighted cost than plain greedy."""
        mediator = trained_pipeline["mediator"]
        costs = [1.0] * len(mediator)
        costs[0] = 25.0  # make the first database expensive to probe
        plain = APro(trained_pipeline["selector"], GreedyUsefulnessPolicy())
        aware = APro(
            trained_pipeline["selector"], CostAwareGreedyPolicy(costs)
        )
        queries = trained_pipeline["test_queries"][:12]
        plain_cost = sum(
            plain.run(q, k=1, threshold=0.9).total_cost(costs)
            for q in queries
        )
        aware_cost = sum(
            aware.run(q, k=1, threshold=0.9).total_cost(costs)
            for q in queries
        )
        assert aware_cost <= plain_cost + 1.0
