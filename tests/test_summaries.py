"""Unit tests for content summaries, builders and estimators."""

import pytest

from repro.exceptions import SummaryError
from repro.hiddenweb.database import HiddenWebDatabase
from repro.summaries.builder import ExactSummaryBuilder, SampledSummaryBuilder
from repro.summaries.estimators import (
    CoriEstimator,
    MaxSimilarityEstimator,
    TermIndependenceEstimator,
)
from repro.summaries.summary import ContentSummary
from repro.text.analyzer import Analyzer
from repro.types import Document, Query


class TestContentSummary:
    def test_basic_lookup(self):
        summary = ContentSummary("db", 100, {"cancer": 20, "heart": 5})
        assert summary.document_frequency("cancer") == 20
        assert summary.document_frequency("absent") == 0
        assert summary.contains("heart")
        assert not summary.contains("absent")

    def test_zero_df_dropped(self):
        summary = ContentSummary("db", 100, {"cancer": 20, "rare": 0})
        assert summary.vocabulary_size == 1
        assert not summary.contains("rare")

    def test_exact_vs_sampled(self):
        exact = ContentSummary("db", 100, {"a": 1})
        sampled = ContentSummary("db", 100, {"a": 1}, sampled_documents=30)
        assert exact.is_exact
        assert not sampled.is_exact

    def test_invalid_size(self):
        with pytest.raises(SummaryError):
            ContentSummary("db", 0, {})

    def test_df_above_size_rejected(self):
        with pytest.raises(SummaryError):
            ContentSummary("db", 10, {"a": 11})

    def test_negative_df_rejected(self):
        with pytest.raises(SummaryError):
            ContentSummary("db", 10, {"a": -1})

    def test_idf_properties(self):
        summary = ContentSummary("db", 100, {"common": 50, "rare": 2})
        assert summary.idf("rare") > summary.idf("common") > 0
        assert summary.idf("absent") == 0.0


class TestExactSummaryBuilder:
    def test_matches_index_statistics(self, tiny_mediator):
        database = tiny_mediator[0]
        summary = ExactSummaryBuilder().build(database)
        assert summary.size == database.size
        assert summary.is_exact
        for term in list(database.index.terms())[:20]:
            assert summary.document_frequency(term) == (
                database.index.document_frequency(term)
            )

    def test_costs_nothing(self, tiny_mediator):
        database = tiny_mediator[1]
        before = database.accounting.probes
        ExactSummaryBuilder().build(database)
        assert database.accounting.probes == before


class TestSampledSummaryBuilder:
    def _database(self):
        documents = [
            Document(i, f"cancer treatment study number{i % 7} research")
            for i in range(60)
        ]
        return HiddenWebDatabase("s", documents, Analyzer(stem=False))

    def test_builds_sampled_summary(self):
        database = self._database()
        builder = SampledSummaryBuilder(
            ["cancer"], target_documents=20, max_probes=40, seed=1,
            analyzer=Analyzer(stem=False),
        )
        summary = builder.build(database)
        assert not summary.is_exact
        assert summary.sampled_documents <= 20
        assert summary.size == database.size
        assert summary.contains("cancer")

    def test_charges_probes_and_downloads(self):
        database = self._database()
        builder = SampledSummaryBuilder(
            ["cancer"], target_documents=10, max_probes=20, seed=2,
            analyzer=Analyzer(stem=False),
        )
        builder.build(database)
        assert database.accounting.probes > 0
        assert database.accounting.documents_downloaded > 0

    def test_df_scaled_to_size(self):
        database = self._database()
        builder = SampledSummaryBuilder(
            ["cancer"], target_documents=30, max_probes=60, seed=3,
            analyzer=Analyzer(stem=False),
        )
        summary = builder.build(database)
        # "cancer" occurs in every document; the scaled estimate should
        # be near the database size.
        assert summary.document_frequency("cancer") >= database.size * 0.8

    def test_no_seed_terms_rejected(self):
        with pytest.raises(SummaryError):
            SampledSummaryBuilder([], target_documents=10)

    def test_miss_raises(self):
        database = self._database()
        builder = SampledSummaryBuilder(
            ["zebra"], target_documents=10, max_probes=5, seed=4,
            analyzer=Analyzer(stem=False),
        )
        with pytest.raises(SummaryError):
            builder.build(database)


class TestTermIndependenceEstimator:
    def test_single_term_equals_df(self):
        summary = ContentSummary("db", 1000, {"cancer": 120})
        estimator = TermIndependenceEstimator()
        assert estimator.estimate(summary, Query(("cancer",))) == 120.0

    def test_two_terms_product(self):
        summary = ContentSummary("db", 1000, {"a": 100, "b": 50})
        estimator = TermIndependenceEstimator()
        # 1000 * (100/1000) * (50/1000) = 5.0
        assert estimator.estimate(summary, Query(("a", "b"))) == pytest.approx(5.0)

    def test_absent_term_zeroes_estimate(self):
        summary = ContentSummary("db", 1000, {"a": 100})
        estimator = TermIndependenceEstimator()
        assert estimator.estimate(summary, Query(("a", "absent"))) == 0.0

    def test_paper_example(self):
        # Example 1 of the paper: 20,000 docs, breast=2,000, cancer=1,000
        # -> r̂ = 100 matching documents.
        summary = ContentSummary(
            "db1", 20_000, {"breast": 2_000, "cancer": 1_000}
        )
        estimator = TermIndependenceEstimator()
        assert estimator.estimate(
            summary, Query(("breast", "cancer"))
        ) == pytest.approx(100.0)

    def test_monotone_in_df(self):
        estimator = TermIndependenceEstimator()
        low = ContentSummary("db", 1000, {"a": 10, "b": 10})
        high = ContentSummary("db", 1000, {"a": 100, "b": 10})
        query = Query(("a", "b"))
        assert estimator.estimate(high, query) > estimator.estimate(low, query)


class TestCoriEstimator:
    def _summaries(self):
        return [
            ContentSummary("a", 100, {"cancer": 50, "heart": 5}),
            ContentSummary("b", 100, {"cancer": 2, "sports": 70}),
        ]

    def test_scores_in_unit_interval(self):
        summaries = self._summaries()
        estimator = CoriEstimator(summaries)
        for summary in summaries:
            score = estimator.estimate(summary, Query(("cancer", "heart")))
            assert 0.0 < score < 1.0

    def test_topical_db_scores_higher(self):
        summaries = self._summaries()
        estimator = CoriEstimator(summaries)
        query = Query(("cancer", "heart"))
        assert estimator.estimate(summaries[0], query) > estimator.estimate(
            summaries[1], query
        )

    def test_absent_terms_give_default_belief(self):
        summaries = self._summaries()
        estimator = CoriEstimator(summaries)
        score = estimator.estimate(summaries[0], Query(("zebra",)))
        assert score == pytest.approx(CoriEstimator.DEFAULT_BELIEF)

    def test_empty_summaries_rejected(self):
        with pytest.raises(Exception):
            CoriEstimator([])


class TestMaxSimilarityEstimator:
    def test_full_coverage_scores_one(self):
        summary = ContentSummary("db", 100, {"a": 10, "b": 20})
        estimator = MaxSimilarityEstimator()
        assert estimator.estimate(summary, Query(("a", "b"))) == pytest.approx(1.0)

    def test_no_coverage_scores_zero(self):
        summary = ContentSummary("db", 100, {"a": 10})
        estimator = MaxSimilarityEstimator()
        assert estimator.estimate(summary, Query(("x", "y"))) == 0.0

    def test_partial_coverage_in_between(self):
        summary = ContentSummary("db", 100, {"a": 10})
        estimator = MaxSimilarityEstimator()
        score = estimator.estimate(summary, Query(("a", "missing")))
        assert 0.0 < score < 1.0
