"""Query-type classification (paper §4.1 and Fig. 9).

Queries with different shapes exhibit different estimator-error
behaviour, so a separate error distribution is kept per *query type*.
The paper's decision tree has two levels:

1. the number of query terms (more terms ⇒ larger independence error);
2. which *band* the initial estimate r̂(db, q) falls into — a cheap,
   database-dependent proxy for "is this query on-topic for this
   database": low estimates usually mean the true count is zero
   (negative error), high estimates usually hide positive term
   correlation (positive error).

The paper uses the single threshold θ = 10 and notes that other
thresholds were studied in its extended version. This implementation
generalizes to a tuple of thresholds (bands); the default uses
log-spaced bands down to 0.1, which matters at laptop-scale database
sizes where the independence product is frequently below one document —
queries with r̂ ≈ 0.5 and r̂ ≈ 0.001 behave very differently and must not
share an ED. Pass ``estimate_thresholds=QueryTypeClassifier.PAPER_THRESHOLDS``
for the paper's exact two-band tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.exceptions import ConfigurationError
from repro.types import Query

__all__ = ["QueryType", "QueryTypeClassifier"]


@dataclass(frozen=True, slots=True, order=True)
class QueryType:
    """One leaf of the query-type decision tree.

    ``estimate_band`` is 0 for the lowest estimates and increases with
    r̂; band b means the estimate cleared exactly b of the classifier's
    thresholds.
    """

    num_terms: int
    estimate_band: int

    def label(self, thresholds: Sequence[float] | None = None) -> str:
        """Human-readable label, e.g. ``"2-term, band 1 (0.5 <= r̂ < 10)"``."""
        if thresholds is None:
            return f"{self.num_terms}-term, band {self.estimate_band}"
        band = self.estimate_band
        if band == 0:
            bounds = f"r̂ < {thresholds[0]:g}"
        elif band == len(thresholds):
            bounds = f"r̂ >= {thresholds[-1]:g}"
        else:
            bounds = f"{thresholds[band - 1]:g} <= r̂ < {thresholds[band]:g}"
        return f"{self.num_terms}-term, {bounds}"


class QueryTypeClassifier:
    """Maps (query, estimate) to a :class:`QueryType`.

    Parameters
    ----------
    estimate_thresholds:
        Ascending estimate cut points; n thresholds give n + 1 bands.
        Default :attr:`DEFAULT_THRESHOLDS`; the paper's tree is
        :attr:`PAPER_THRESHOLDS`.
    term_counts:
        The term counts with dedicated types; queries outside the range
        are clamped to the nearest listed count (the trace focuses on
        2- and 3-term queries, but the classifier must accept anything).
    split_on_estimate:
        Disable to ablate the second tree level (one ED per term count).
    """

    DEFAULT_THRESHOLDS: tuple[float, ...] = (0.1, 0.3, 1.0, 3.0, 10.0, 30.0)

    #: The paper's original tree: a single split at θ = 10.
    PAPER_THRESHOLDS: tuple[float, ...] = (10.0,)

    def __init__(
        self,
        estimate_thresholds: Sequence[float] | float = DEFAULT_THRESHOLDS,
        term_counts: tuple[int, ...] = (2, 3),
        split_on_estimate: bool = True,
    ) -> None:
        if isinstance(estimate_thresholds, (int, float)):
            estimate_thresholds = (float(estimate_thresholds),)
        thresholds = tuple(float(t) for t in estimate_thresholds)
        if not thresholds:
            raise ConfigurationError("need at least one estimate threshold")
        if any(t <= 0 for t in thresholds):
            raise ConfigurationError(
                f"estimate thresholds must be positive, got {thresholds}"
            )
        if any(b <= a for a, b in zip(thresholds, thresholds[1:])):
            raise ConfigurationError(
                f"estimate thresholds must be strictly ascending: {thresholds}"
            )
        if not term_counts or any(count < 1 for count in term_counts):
            raise ConfigurationError("term_counts must be positive and non-empty")
        self._thresholds = thresholds
        self._term_counts = tuple(sorted(set(term_counts)))
        self._split_on_estimate = split_on_estimate

    @property
    def estimate_thresholds(self) -> tuple[float, ...]:
        """The band cut points."""
        return self._thresholds

    @property
    def term_counts(self) -> tuple[int, ...]:
        """The term counts with dedicated types."""
        return self._term_counts

    @property
    def num_bands(self) -> int:
        """Number of estimate bands (thresholds + 1; 1 when disabled)."""
        if not self._split_on_estimate:
            return 1
        return len(self._thresholds) + 1

    def _clamp_terms(self, num_terms: int) -> int:
        if num_terms <= self._term_counts[0]:
            return self._term_counts[0]
        if num_terms >= self._term_counts[-1]:
            return self._term_counts[-1]
        # Snap to the nearest listed count (ties toward the smaller).
        return min(
            self._term_counts, key=lambda count: (abs(count - num_terms), count)
        )

    def band_of(self, estimate: float) -> int:
        """The estimate band: how many thresholds *estimate* clears."""
        if not self._split_on_estimate:
            return 0
        band = 0
        for threshold in self._thresholds:
            if estimate >= threshold:
                band += 1
        return band

    def classify(self, query: Query, estimate: float) -> QueryType:
        """Classify *query* given its estimate on one database.

        Note the classification is database-dependent through *estimate*:
        the same query can land in different bands on different databases
        (paper §4.1).
        """
        return QueryType(
            num_terms=self._clamp_terms(query.num_terms),
            estimate_band=self.band_of(estimate),
        )

    def all_types(self) -> list[QueryType]:
        """Every leaf the classifier can produce (training enumerates these)."""
        return [
            QueryType(count, band)
            for count in self._term_counts
            for band in range(self.num_bands)
        ]

    def label(self, query_type: QueryType) -> str:
        """Label *query_type* with this classifier's threshold bounds."""
        if not self._split_on_estimate:
            return f"{query_type.num_terms}-term"
        return query_type.label(self._thresholds)

    def __repr__(self) -> str:
        return (
            f"QueryTypeClassifier(thresholds={self._thresholds}, "
            f"term_counts={self._term_counts}, "
            f"split_on_estimate={self._split_on_estimate})"
        )
