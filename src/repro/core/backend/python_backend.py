"""The row-wise oracle backend.

This is the legacy numeric path of :mod:`repro.core.topk` — per-database
Python loops over NumPy rows — extracted behind the
:class:`~repro.core.backend.base.ArrayBackend` interface, arithmetic
untouched. It stays registered as ``python`` and is the reference the
equality tests compare every other backend against.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend.base import ArrayBackend

__all__ = ["PythonBackend"]


class PythonBackend(ArrayBackend):
    """Per-database row-wise kernels (the pre-backend arithmetic)."""

    name = "python"
    vectorized = False

    def outrank_structures(self, probs, dbs, ranks, order, n):
        m = len(probs)
        # Per-database cumulative mass by rank, supporting
        # P(rank_j > t) and P(rank_j < t) lookups for arbitrary t.
        db_sorted_ranks: list[np.ndarray] = []
        db_cumprobs: list[np.ndarray] = []
        for i in range(n):
            mask = dbs == i
            db_ranks = ranks[mask]
            db_probs = probs[mask]
            sort = np.argsort(db_ranks)
            sorted_ranks = db_ranks[sort]
            cum = np.concatenate(([0.0], np.cumsum(db_probs[sort])))
            db_sorted_ranks.append(sorted_ranks)
            db_cumprobs.append(cum)

        # G[j, t] = P(database j's realization outranks atom t)
        # L[j, t] = P(database j's realization ranks below atom t)
        # (for j == atom_db[t], G + L + P(atom t) == 1).
        greater = np.empty((n, m), dtype=np.float64)
        less = np.empty((n, m), dtype=np.float64)
        for j in range(n):
            sorted_ranks = db_sorted_ranks[j]
            cum = db_cumprobs[j]
            right = np.searchsorted(sorted_ranks, ranks, side="right")
            left = np.searchsorted(sorted_ranks, ranks, side="left")
            greater[j] = cum[-1] - cum[right]
            less[j] = cum[left]
        # Each atom's own database carries no weight in the outrank
        # counts (it is conditioned on, not competing); both the
        # marginal DP and the member product neutralize those entries
        # anyway, so the mask removes a copy per call.
        greater[dbs, np.arange(m)] = 0.0
        return greater, less, db_sorted_ranks, db_cumprobs

    @staticmethod
    def _dp_step(dp: np.ndarray, p_row: np.ndarray) -> np.ndarray:
        """One DP step: fold in a database with outrank probabilities."""
        p = p_row[:, None]
        keep = dp * (1.0 - p)
        keep[:, 1:] += dp[:, :-1] * p
        return keep

    def dp_chain(self, greater, k, reverse=False):
        n, m = greater.shape
        out = np.empty((n + 1, m, k), dtype=np.float64)
        init = np.zeros((m, k), dtype=np.float64)
        init[:, 0] = 1.0
        if reverse:
            out[n] = init
            for j in reversed(range(n)):
                out[j] = self._dp_step(out[j + 1], greater[j])
        else:
            out[0] = init
            for j in range(n):
                out[j + 1] = self._dp_step(out[j], greater[j])
        return out

    def loo_combine(self, pre, suf, k):
        out = np.zeros_like(pre)
        for c in range(k):
            for a in range(c + 1):
                out[..., c] += pre[..., a] * suf[..., c - a]
        return out

    def override_membership(self, dp_loo, g, k):
        p = g[..., None]
        keep = dp_loo * (1.0 - p)
        keep[..., 1:] += dp_loo[..., :-1] * p
        return keep.sum(axis=-1)

    def collapse_column(
        self,
        rank0,
        database,
        n,
        db_sorted_ranks,
        db_cumprobs,
    ):
        greater_col = np.zeros(n, dtype=np.float64)
        less_col = np.zeros(n, dtype=np.float64)
        for j in range(n):
            if j == database:
                # Placeholder: the caller overwrites row ``database``
                # wholesale (and its masked own entry is 0.0 anyway).
                continue
            sorted_ranks = db_sorted_ranks[j]
            cum = db_cumprobs[j]
            right = int(np.searchsorted(sorted_ranks, rank0, side="right"))
            left = int(np.searchsorted(sorted_ranks, rank0, side="left"))
            greater_col[j] = cum[-1] - cum[right]
            less_col[j] = cum[left]
        return greater_col, less_col

    def derive_rd_arrays(
        self, floored, error_values, error_probs, owner, document_frequency
    ):
        # No batched path: callers fall back to the per-atom
        # ``derive_rd`` (map + from_pairs) route.
        return None
