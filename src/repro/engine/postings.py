"""Posting lists: the per-term payload of an inverted index.

A posting list stores, for one term, the sorted document ids containing
the term and the term frequency in each. Lists support the two operations
the engine needs: sorted-merge intersection (for conjunctive matching) and
iteration (for scoring).
"""

from __future__ import annotations

from array import array
from collections.abc import Iterator

__all__ = ["PostingList", "intersect_many"]


class PostingList:
    """Compact posting list for a single term.

    Internally two parallel ``array`` columns: document ids (ascending)
    and term frequencies. Construction is append-only through
    :meth:`add`; ids must be added in strictly increasing order, which the
    index builder guarantees by processing documents in id order.
    """

    __slots__ = ("_doc_ids", "_freqs")

    def __init__(self) -> None:
        self._doc_ids = array("q")
        self._freqs = array("q")

    def add(self, doc_id: int, freq: int) -> None:
        """Append one posting. *doc_id* must exceed the current maximum."""
        if self._doc_ids and doc_id <= self._doc_ids[-1]:
            raise ValueError(
                f"postings must be appended in increasing doc-id order; "
                f"got {doc_id} after {self._doc_ids[-1]}"
            )
        if freq <= 0:
            raise ValueError(f"term frequency must be positive, got {freq}")
        self._doc_ids.append(doc_id)
        self._freqs.append(freq)

    @property
    def document_frequency(self) -> int:
        """Number of documents containing the term."""
        return len(self._doc_ids)

    @property
    def collection_frequency(self) -> int:
        """Total occurrences of the term across all documents."""
        return sum(self._freqs)

    def doc_ids(self) -> array:
        """The ascending document-id column (do not mutate)."""
        return self._doc_ids

    def freq(self, doc_id: int) -> int:
        """Term frequency in *doc_id* (0 if the document lacks the term)."""
        idx = self._bisect(doc_id)
        if idx is None:
            return 0
        return self._freqs[idx]

    def _bisect(self, doc_id: int) -> int | None:
        lo, hi = 0, len(self._doc_ids)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._doc_ids[mid] < doc_id:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self._doc_ids) and self._doc_ids[lo] == doc_id:
            return lo
        return None

    def __len__(self) -> int:
        return len(self._doc_ids)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return zip(self._doc_ids, self._freqs)

    def __contains__(self, doc_id: int) -> bool:
        return self._bisect(doc_id) is not None

    def __repr__(self) -> str:
        return f"PostingList(df={self.document_frequency})"


def intersect_many(lists: list[PostingList]) -> list[int]:
    """Return doc ids present in *every* posting list (sorted ascending).

    Uses the standard smallest-first sorted-merge: start from the shortest
    list and galloping-probe the others, so the cost is bounded by the
    rarest term. An empty input list yields an empty intersection (callers
    decide what an empty conjunction means).
    """
    if not lists:
        return []
    if any(len(pl) == 0 for pl in lists):
        return []
    ordered = sorted(lists, key=len)
    result = list(ordered[0].doc_ids())
    for plist in ordered[1:]:
        if not result:
            break
        result = [doc_id for doc_id in result if doc_id in plist]
    return result
