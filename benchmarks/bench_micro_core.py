"""Micro-benchmarks of the core operations (true timing loops).

These are the per-query costs a deployment cares about: conjunctive
match counting inside a database, RD construction, expected-correctness
computation, full RD-based selection, and one APro run.
"""

from __future__ import annotations

import pytest

from repro.core.policies import GreedyUsefulnessPolicy
from repro.core.probing import APro
from repro.core.topk import CorrectnessMetric, TopKComputer


@pytest.fixture(scope="module")
def sample_query(paper_context):
    return paper_context.test_queries[0]


def test_engine_match_count(benchmark, paper_context, sample_query):
    database = paper_context.mediator["PubMedCentral"]
    benchmark(database.index.match_count, sample_query)


def test_build_rds(benchmark, paper_pipeline, sample_query):
    benchmark(paper_pipeline.rd_selector.build_rds, sample_query)


def test_topk_best_set_k1(benchmark, paper_pipeline, sample_query):
    rds = paper_pipeline.rd_selector.build_rds(sample_query)
    computer = TopKComputer(rds, 1)
    benchmark(computer.best_set, CorrectnessMetric.ABSOLUTE)


def test_topk_best_set_k3(benchmark, paper_pipeline, sample_query):
    rds = paper_pipeline.rd_selector.build_rds(sample_query)
    computer = TopKComputer(rds, 3)
    benchmark(computer.best_set, CorrectnessMetric.ABSOLUTE)


def test_topk_marginals(benchmark, paper_pipeline, sample_query):
    rds = paper_pipeline.rd_selector.build_rds(sample_query)
    computer = TopKComputer(rds, 3)
    benchmark(computer.marginals)


def test_rd_selection_k1(benchmark, paper_pipeline, sample_query):
    benchmark(
        paper_pipeline.rd_selector.select,
        sample_query,
        1,
        CorrectnessMetric.ABSOLUTE,
    )


def test_apro_run_k1_t80(benchmark, paper_context, paper_pipeline):
    apro = APro(paper_pipeline.rd_selector)
    query = paper_context.test_queries[1]

    def run():
        return apro.run(query, k=1, threshold=0.8)

    benchmark(run)


@pytest.mark.parametrize("batched", [True, False], ids=["batched", "legacy"])
def test_usefulness_sweep_k1(
    benchmark, paper_pipeline, sample_query, batched
):
    """One greedy policy round: usefulness of every candidate database.

    A fresh computer per call, as APro pays after each observation; the
    legacy variant is the per-atom ``best_set`` path kept behind
    ``GreedyUsefulnessPolicy(batched=False)``.
    """
    rds = paper_pipeline.rd_selector.build_rds(sample_query)
    policy = GreedyUsefulnessPolicy(batched=batched)

    def sweep():
        computer = TopKComputer(rds, 1)
        for database in range(len(rds)):
            policy.usefulness(
                computer, database, CorrectnessMetric.ABSOLUTE
            )

    benchmark(sweep)
