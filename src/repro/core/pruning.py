"""Provable candidate pruning for top-k selection at federated scale.

Every layer above the core pays O(n) RD builds *and* an O(n² · s)
``TopKComputer`` per query, so selection cost grows (super)linearly in
the number of mediated databases. At federated scale (hundreds to
thousands of sources) most databases are obviously irrelevant to any
one query — their entire relevancy support sits below other databases'
*worst case* — and this module computes the cheap per-database bounds
that prove it, so APro can run the expensive belief machinery on the
survivors only.

Soundness (the bound the exact mode rests on)
---------------------------------------------

The belief core ranks atoms by the strict total order

    ``(value, -database)``: higher relevancy wins, and on equal values
    the earlier mediation index wins (``np.lexsort((-dbs, values))`` in
    :mod:`repro.core.topk`).

Write ``best(i) = (max support(RD_i), -i)`` and ``worst(j) =
(min support(RD_j), -j)``. If ``worst(j) > best(i)`` lexicographically,
then *every* atom of database ``j`` outranks *every* atom of database
``i`` — database ``j`` beats ``i`` with certainty, under every
realization and every future probe outcome consistent with the current
belief state (probing only collapses an RD onto one of the hypotheses
already priced into these bounds; out-of-support observations are why
the certificate is re-checked after every probe, see
:meth:`repro.core.probing.APro.run`).

Therefore, if at least ``k`` databases certainly beat database ``i``,
then ``i`` is in no top-k set with positive probability: its top-k
membership marginal is zero, no best set contains it, and the greedy
usefulness of probing it can never exceed a survivor's. Pruning it
cannot change the selection, the probe order, or the certainty beyond
the repo's standard floating-point contract (certainty deltas ≤ 1e-9;
in practice the residual is ~1e-15, the probability-normalization ulp —
see docs/PERFORMANCE.md "Selection at scale").

Floor guarantee: the ``k`` databases with the largest ``worst(·)`` keys
are never prunable — for such a database ``i``, any certain better
``j`` satisfies ``worst(j) > best(i) >= worst(i)``, and fewer than
``k`` databases have ``worst(j) > worst(i)`` by construction. Hence
``len(survivors) >= min(k, n)`` always, and the restricted computer is
well-formed.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["support_bounds", "prunable_mask", "survivor_indices"]


def support_bounds(rds: Sequence) -> tuple[np.ndarray, np.ndarray]:
    """Per-database (min, max) support values of *rds*.

    Distribution atoms are stored value-ascending (a
    :class:`~repro.stats.distribution.DiscreteDistribution` invariant),
    so the bounds are the first and last atoms — O(1) per database, no
    probability mass touched.
    """
    mins = np.array([float(rd.values[0]) for rd in rds], dtype=np.float64)
    maxs = np.array([float(rd.values[-1]) for rd in rds], dtype=np.float64)
    return mins, maxs


def prunable_mask(
    mins: np.ndarray, maxs: np.ndarray, k: int
) -> np.ndarray:
    """Boolean mask: ``True`` where a database provably misses the top-k.

    Database ``i`` is prunable iff at least ``k`` databases ``j``
    certainly beat it, i.e. ``(mins[j], -j) > (maxs[i], -i)``
    lexicographically — strictly-higher worst case, or an equal worst
    case from an earlier mediation index (the atom order's tie rule).
    Vectorized as a sort + two binary searches; the tie correction only
    loops over databases whose best case collides with some worst case.
    """
    n = len(mins)
    if n == 0 or k >= n:
        return np.zeros(n, dtype=bool)
    order = np.argsort(mins, kind="stable")
    sorted_mins = mins[order]
    right = np.searchsorted(sorted_mins, maxs, side="right")
    left = np.searchsorted(sorted_mins, maxs, side="left")
    beaten_by = (n - right).astype(np.int64)
    for i in np.nonzero(right > left)[0]:
        # Databases j with mins[j] == maxs[i]: they certainly beat i
        # only from an earlier mediation index (j < i).
        ties = order[left[i] : right[i]]
        beaten_by[i] += int(np.count_nonzero(ties < i))
    return beaten_by >= k


def survivor_indices(
    mins: np.ndarray, maxs: np.ndarray, k: int
) -> list[int]:
    """Ascending indices of the databases the bounds cannot exclude."""
    mask = prunable_mask(mins, maxs, k)
    return [int(i) for i in np.nonzero(~mask)[0]]
