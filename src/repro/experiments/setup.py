"""Paper-experiment setup (§6.1): testbed, query sets, golden standard.

Assembles, deterministically from a single config:

* the 20-database health-web mediator (synthetic stand-in for the
  paper's CompletePlanet databases),
* a simulated Web query trace filtered to health-care queries with at
  least two domain-vocabulary terms (the paper's MedLinePlus filter),
* disjoint Q_train / Q_test sets,
* the golden standard (true top-k per test query).

Test queries are additionally required to match at least
``min_matching_databases`` databases; a query matching nothing anywhere
has no meaningful "most relevant database" and the paper's real-user
trace against real large databases did not contain such queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.correctness import GoldenStandard
from repro.exceptions import ConfigurationError
from repro.hiddenweb.database import RelevancyDefinition
from repro.hiddenweb.mediator import Mediator
from repro.corpus.collections import testbed_specs
from repro.corpus.generator import DocumentGenerator
from repro.corpus.topics import TopicRegistry, default_topic_registry
from repro.corpus.zipf import ZipfVocabulary
from repro.querylog.generator import QueryTraceGenerator, TraceConfig
from repro.querylog.vocabulary import domain_vocabulary, is_domain_query
from repro.text.analyzer import Analyzer
from repro.types import Query

__all__ = ["PaperSetupConfig", "ExperimentContext", "build_paper_context"]


@dataclass(frozen=True)
class PaperSetupConfig:
    """Knobs of the paper-experiment setup.

    The defaults are a laptop-scale rendition of §6.1 (the paper used
    1000 + 1000 training queries and 1000 + 1000 test queries against
    databases of up to ~10^5 documents; scale and counts here default
    smaller so a full reproduction run finishes in minutes).
    """

    scale: float = 0.3
    seed: int = 2004
    n_train: int = 1600
    n_test: int = 300
    min_matching_databases: int = 3
    background_vocab_size: int = 4000
    definition: RelevancyDefinition = RelevancyDefinition.DOCUMENT_FREQUENCY
    trace: TraceConfig = field(default_factory=TraceConfig)

    def __post_init__(self) -> None:
        if self.n_train <= 0 or self.n_test <= 0:
            raise ConfigurationError("query counts must be positive")
        if self.min_matching_databases < 0:
            raise ConfigurationError("min_matching_databases must be >= 0")


@dataclass
class ExperimentContext:
    """Everything an experiment needs, built once."""

    config: PaperSetupConfig
    registry: TopicRegistry
    analyzer: Analyzer
    mediator: Mediator
    train_queries: list[Query]
    test_queries: list[Query]
    golden: GoldenStandard

    @property
    def num_databases(self) -> int:
        """Number of mediated databases."""
        return len(self.mediator)


def build_paper_context(
    config: PaperSetupConfig | None = None,
) -> ExperimentContext:
    """Materialize the full §6.1 experimental setup deterministically."""
    config = config or PaperSetupConfig()
    registry = default_topic_registry(seed=config.seed)
    background = ZipfVocabulary(
        config.background_vocab_size, seed=config.seed + 1
    )
    generator = DocumentGenerator(registry, background)
    analyzer = Analyzer()
    corpora = {
        spec.name: generator.generate(spec)
        for spec in testbed_specs(config.scale)
    }
    mediator = Mediator.from_documents(corpora, analyzer=analyzer)

    health_vocab = domain_vocabulary(registry, "health", analyzer)
    trace = QueryTraceGenerator(
        registry,
        background,
        analyzer=analyzer,
        config=config.trace,
        seed=config.seed + 2,
    )
    golden = GoldenStandard(mediator, config.definition)

    train_queries: list[Query] = []
    test_queries: list[Query] = []
    seen: set[Query] = set()
    # Generate in chunks until both sets are filled; the domain filter
    # and (for the test set) the match-count filter reject candidates.
    budget = 200 * (config.n_train + config.n_test)
    while (
        len(train_queries) < config.n_train
        or len(test_queries) < config.n_test
    ):
        if budget <= 0:
            raise ConfigurationError(
                "query generation budget exhausted; filters too strict "
                f"(have {len(train_queries)} train / {len(test_queries)} test)"
            )
        budget -= 1
        query = trace.next_query()
        if query in seen or not is_domain_query(query, health_vocab):
            continue
        seen.add(query)
        if len(train_queries) < config.n_train:
            train_queries.append(query)
            continue
        matching = sum(1 for r in golden.relevancies(query) if r > 0)
        if matching >= config.min_matching_databases:
            test_queries.append(query)
    return ExperimentContext(
        config=config,
        registry=registry,
        analyzer=analyzer,
        mediator=mediator,
        train_queries=train_queries,
        test_queries=test_queries,
        golden=golden,
    )
