"""The metasearcher façade: train, select, search, fuse.

:class:`Metasearcher` wires the whole pipeline together behind a
three-call API (``train`` → ``select`` → ``search``);
:mod:`~repro.metasearch.baselines` holds the estimation-based selectors
the paper compares against; :mod:`~repro.metasearch.fusion` merges result
pages from the selected databases (the paper's task 2).
"""

from repro.metasearch.baselines import EstimationBasedSelector
from repro.metasearch.fusion import FusedHit, merge_results
from repro.metasearch.metasearcher import Metasearcher, MetasearcherConfig

__all__ = [
    "EstimationBasedSelector",
    "FusedHit",
    "Metasearcher",
    "MetasearcherConfig",
    "merge_results",
]
