"""Unit tests for the search-engine substrate."""

import pytest

from repro.engine.index import InvertedIndex
from repro.engine.postings import PostingList, intersect_many
from repro.engine.searcher import Searcher
from repro.engine.vectorspace import VectorSpaceScorer
from repro.text.analyzer import Analyzer
from repro.types import Document, Query


def build_index(documents, stem=False):
    index = InvertedIndex(Analyzer(stem=stem))
    index.add_all(documents)
    return index.freeze()


class TestPostingList:
    def test_add_and_lookup(self):
        plist = PostingList()
        plist.add(1, 2)
        plist.add(5, 1)
        assert plist.document_frequency == 2
        assert plist.collection_frequency == 3
        assert plist.freq(1) == 2
        assert plist.freq(5) == 1
        assert plist.freq(3) == 0

    def test_contains(self):
        plist = PostingList()
        plist.add(2, 1)
        assert 2 in plist
        assert 3 not in plist

    def test_requires_increasing_ids(self):
        plist = PostingList()
        plist.add(4, 1)
        with pytest.raises(ValueError):
            plist.add(4, 1)
        with pytest.raises(ValueError):
            plist.add(2, 1)

    def test_rejects_nonpositive_freq(self):
        plist = PostingList()
        with pytest.raises(ValueError):
            plist.add(0, 0)

    def test_iteration_order(self):
        plist = PostingList()
        for doc_id in (1, 3, 7):
            plist.add(doc_id, doc_id)
        assert list(plist) == [(1, 1), (3, 3), (7, 7)]


class TestIntersectMany:
    def _plist(self, ids):
        plist = PostingList()
        for doc_id in ids:
            plist.add(doc_id, 1)
        return plist

    def test_two_lists(self):
        a = self._plist([1, 2, 3, 5])
        b = self._plist([2, 3, 4])
        assert intersect_many([a, b]) == [2, 3]

    def test_three_lists(self):
        lists = [
            self._plist([1, 2, 3, 4, 5]),
            self._plist([2, 4, 5]),
            self._plist([4, 5, 6]),
        ]
        assert intersect_many(lists) == [4, 5]

    def test_empty_input(self):
        assert intersect_many([]) == []

    def test_empty_list_short_circuits(self):
        assert intersect_many([self._plist([1]), self._plist([])]) == []

    def test_disjoint(self):
        assert intersect_many([self._plist([1]), self._plist([2])]) == []


class TestInvertedIndex:
    def test_document_frequency(self, sample_documents):
        index = build_index(sample_documents)
        assert index.document_frequency("cancer") == 3
        assert index.document_frequency("breast") == 2
        assert index.document_frequency("absentterm") == 0

    def test_num_documents_and_vocabulary(self, sample_documents):
        index = build_index(sample_documents)
        assert index.num_documents == 5
        assert index.vocabulary_size > 5

    def test_match_count_conjunctive(self, sample_documents):
        index = build_index(sample_documents)
        assert index.match_count(Query(("breast", "cancer"))) == 2
        assert index.match_count(Query(("cancer",))) == 3
        assert index.match_count(Query(("cancer", "absent"))) == 0

    def test_matching_ids_sorted(self, sample_documents):
        index = build_index(sample_documents)
        ids = index.matching_doc_ids(Query(("cancer",)))
        assert ids == sorted(ids)

    def test_duplicate_doc_id_rejected(self):
        index = InvertedIndex(Analyzer(stem=False))
        index.add(Document(0, "a b"))
        with pytest.raises(ValueError):
            index.add(Document(0, "c d"))

    def test_frozen_rejects_add(self, sample_documents):
        index = build_index(sample_documents)
        with pytest.raises(RuntimeError):
            index.add(Document(99, "late document"))

    def test_idf_monotone_in_rarity(self, sample_documents):
        index = build_index(sample_documents)
        # "breast" (df=2) is rarer than "cancer" (df=3).
        assert index.idf("breast") > index.idf("cancer")
        assert index.idf("absent") == 0.0

    def test_stemming_affects_matching(self):
        docs = [Document(0, "cancer treatments"), Document(1, "cancer treatment")]
        index = InvertedIndex(Analyzer(stem=True))
        index.add_all(docs)
        index.freeze()
        assert index.document_frequency("treatment") == 2

    def test_document_lookup(self, sample_documents):
        index = build_index(sample_documents)
        assert index.document(3).text.startswith("the sports")

    def test_norms_require_freeze(self):
        index = InvertedIndex(Analyzer(stem=False))
        index.add(Document(0, "a b"))
        with pytest.raises(RuntimeError):
            index.document_norm(0)


class TestVectorSpaceScorer:
    def test_exact_match_scores_highest(self, sample_documents):
        index = build_index(sample_documents)
        scorer = VectorSpaceScorer(index)
        hits = scorer.top_k(Query(("breast", "cancer")), k=5)
        assert hits, "expected hits for present terms"
        top_ids = {hit.doc_id for hit in hits[:2]}
        assert top_ids == {0, 2}

    def test_scores_in_unit_interval(self, sample_documents):
        index = build_index(sample_documents)
        scorer = VectorSpaceScorer(index)
        for hit in scorer.top_k(Query(("cancer", "research")), k=10):
            assert 0.0 <= hit.score <= 1.0 + 1e-9

    def test_absent_terms_score_empty(self, sample_documents):
        index = build_index(sample_documents)
        scorer = VectorSpaceScorer(index)
        assert scorer.top_k(Query(("zebra",)), k=3) == []

    def test_scores_sorted_descending(self, sample_documents):
        index = build_index(sample_documents)
        scorer = VectorSpaceScorer(index)
        hits = scorer.top_k(Query(("cancer",)), k=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_single_doc_full_match_is_near_one(self):
        # One document that IS the query should have cosine close to 1.
        docs = [Document(0, "alpha beta"), Document(1, "gamma delta")]
        index = build_index(docs)
        scorer = VectorSpaceScorer(index)
        hits = scorer.top_k(Query(("alpha", "beta")), k=1)
        assert hits[0].doc_id == 0
        assert hits[0].score == pytest.approx(1.0, abs=1e-9)


class TestSearcher:
    def test_search_result_fields(self, sample_documents):
        searcher = Searcher(build_index(sample_documents), page_size=2)
        result = searcher.search(Query(("cancer",)))
        assert result.num_matches == 3
        assert len(result.top_documents) == 2

    def test_zero_matches(self, sample_documents):
        searcher = Searcher(build_index(sample_documents))
        result = searcher.search(Query(("cancer", "zebra")))
        assert result.num_matches == 0
        assert result.top_documents == ()

    def test_page_restricted_to_conjunctive_matches(self, sample_documents):
        searcher = Searcher(build_index(sample_documents), page_size=10)
        result = searcher.search(Query(("breast", "cancer")))
        assert {hit.doc_id for hit in result.top_documents} == {0, 2}

    def test_negative_page_size_rejected(self, sample_documents):
        with pytest.raises(ValueError):
            Searcher(build_index(sample_documents), page_size=-1)

    def test_deterministic(self, sample_documents):
        searcher = Searcher(build_index(sample_documents))
        first = searcher.search(Query(("cancer",)))
        second = searcher.search(Query(("cancer",)))
        assert first == second
