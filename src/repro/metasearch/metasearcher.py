"""The end-to-end metasearcher.

One object owning the whole pipeline of Fig. 1:

1. ``train(queries)`` — build content summaries, learn the error model
   by sampling every database with the training queries;
2. ``select(text, k, certainty)`` — RD-based selection plus adaptive
   probing until the requested certainty;
3. ``search(text, k, certainty)`` — select, forward the query to the
   chosen databases, and fuse their result pages.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.policies import GreedyUsefulnessPolicy, ProbePolicy
from repro.core.probing import APro, ProbeSession
from repro.core.query_types import QueryTypeClassifier
from repro.core.selection import RDBasedSelector, SelectionResult
from repro.core.topk import CorrectnessMetric
from repro.core.training import EDTrainer, ErrorModel
from repro.exceptions import ConfigurationError, ReproError
from repro.hiddenweb.database import RelevancyDefinition
from repro.hiddenweb.mediator import Mediator
from repro.metasearch.fusion import FusedHit, merge_results
from repro.summaries.builder import ExactSummaryBuilder, SampledSummaryBuilder
from repro.summaries.estimators import (
    RelevancyEstimator,
    TermIndependenceEstimator,
)
from repro.summaries.summary import ContentSummary
from repro.text.analyzer import Analyzer
from repro.types import Query

__all__ = [
    "MetasearcherConfig",
    "Metasearcher",
    "MetasearchAnswer",
    "PREFILTER_ENV",
]

#: Environment knob selecting the candidate-pruning mode when
#: ``MetasearcherConfig.prune_mode`` is left unset. Empty/``"0"``/
#: ``"off"`` disable pruning, ``"1"``/``"exact"`` enable the
#: answer-identical bound pruning, ``"topm"`` additionally enables the
#: probe-trained prefilter tier (answer-affecting, opt-in).
PREFILTER_ENV = "REPRO_PREFILTER"

_PRUNE_MODE_ALIASES = {
    "": "off",
    "0": "off",
    "off": "off",
    "1": "exact",
    "exact": "exact",
    "topm": "topm",
}


@dataclass(frozen=True)
class MetasearcherConfig:
    """Tunables of the pipeline; defaults follow the paper.

    Parameters
    ----------
    definition:
        Relevancy definition (document-frequency by default, as in the
        paper's experiments).
    metric:
        Correctness metric guaranteed by ``certainty``.
    samples_per_type:
        Training probes per (database, query-type) slice (paper: 50).
    estimate_thresholds:
        Estimate band cut points of the query-type tree (the paper's
        tree is the single threshold ``(10.0,)``).
    summary_sampling:
        ``None`` builds exact summaries; otherwise query-based sampling
        with this many target documents per database.
    summary_seed_terms:
        Initial probe vocabulary for query-based sampling. The default
        spreads one recognizable term per catalogue topic so sampling
        gets a foothold on any topical database.
    max_probes:
        Optional hard probe budget per query.
    probe_batch_size:
        Probes issued concurrently per APro decision round (the
        latency extension of :meth:`repro.core.probing.APro.run`).
        ``1`` is the paper's strictly sequential loop; widths above 1
        trade a little probe efficiency for wall-clock latency and are
        what the serving layer's executor overlaps (``--batch`` on the
        CLI).
    train_workers:
        Worker-pool width for the offline training phase. ``1`` keeps
        the paper's sequential :class:`~repro.core.training.EDTrainer`;
        widths above 1 route training probes through
        :class:`~repro.service.training.ParallelEDTrainer` (same
        trained state, bit-identical, for any width — see
        ``docs/TRAINING.md``).
    train_checkpoint_every:
        Queries between training checkpoints when :meth:`train` is
        given a ``checkpoint_path``.
    prune_mode:
        Candidate-pruning mode in front of RD/APro — ``"off"``,
        ``"exact"`` (bound-based pruning, selections and probe orders
        identical to the unpruned path; see
        :mod:`repro.core.pruning`), or ``"topm"`` (exact pruning plus
        the probe-trained :class:`~repro.metasearch.prefilter.
        PrefilterTier`, keeping only the top-M affine databases per
        query — answers may change, the delta is measured by
        ``bench-scale``). ``None`` (the default) reads the
        ``REPRO_PREFILTER`` environment variable, defaulting to
        ``"off"``.
    prefilter_top_m:
        Databases the prefilter tier keeps per query in ``"topm"``
        mode (clamped up to ``k`` at query time).
    """

    DEFAULT_SEED_TERMS: tuple[str, ...] = (
        "health", "medical", "cancer", "heart", "brain", "virus", "diet",
        "child", "drug", "depression", "gene", "surgery", "quantum",
        "galaxy", "climate", "molecule", "election", "market", "game",
        "study", "report",
    )

    definition: RelevancyDefinition = RelevancyDefinition.DOCUMENT_FREQUENCY
    metric: CorrectnessMetric = CorrectnessMetric.ABSOLUTE
    samples_per_type: int | None = 50
    estimate_thresholds: tuple[float, ...] = QueryTypeClassifier.DEFAULT_THRESHOLDS
    summary_sampling: int | None = None
    summary_seed_terms: tuple[str, ...] = DEFAULT_SEED_TERMS
    max_probes: int | None = None
    probe_batch_size: int = 1
    train_workers: int = 1
    train_checkpoint_every: int = 25
    prune_mode: str | None = None
    prefilter_top_m: int = 16

    def __post_init__(self) -> None:
        if self.prune_mode is None:
            raw = os.environ.get(PREFILTER_ENV, "").strip().lower()
            resolved = _PRUNE_MODE_ALIASES.get(raw)
            if resolved is None:
                raise ConfigurationError(
                    f"{PREFILTER_ENV}={raw!r} is not a valid prune mode; "
                    f"use one of {sorted(set(_PRUNE_MODE_ALIASES.values()))}"
                )
            object.__setattr__(self, "prune_mode", resolved)
        elif self.prune_mode not in ("off", "exact", "topm"):
            raise ConfigurationError(
                f"prune_mode must be 'off', 'exact' or 'topm', "
                f"got {self.prune_mode!r}"
            )
        if self.prefilter_top_m < 1:
            raise ConfigurationError(
                f"prefilter_top_m must be >= 1, got {self.prefilter_top_m}"
            )
        if self.probe_batch_size < 1:
            raise ConfigurationError(
                f"probe_batch_size must be >= 1, got {self.probe_batch_size}"
            )
        if self.max_probes is not None and self.max_probes < 0:
            raise ConfigurationError(
                f"max_probes must be >= 0, got {self.max_probes}"
            )
        if self.train_workers < 1:
            raise ConfigurationError(
                f"train_workers must be >= 1, got {self.train_workers}"
            )
        if self.train_checkpoint_every < 1:
            raise ConfigurationError(
                f"train_checkpoint_every must be >= 1, got "
                f"{self.train_checkpoint_every}"
            )


@dataclass(frozen=True)
class MetasearchAnswer:
    """What :meth:`Metasearcher.search` returns to the user."""

    query: Query
    selected: tuple[str, ...]
    certainty: float
    probes_used: int
    hits: list[FusedHit] = field(default_factory=list)


class Metasearcher:
    """Facade over the full probabilistic metasearching pipeline.

    Parameters
    ----------
    mediator:
        The Hidden-Web databases to mediate.
    config:
        Pipeline tunables.
    estimator:
        Relevancy estimator (term-independence by default, as in the
        paper).
    policy:
        Probe-order policy (greedy usefulness by default).
    analyzer:
        Analyzer for free-text user queries; should be the same instance
        used to index the databases.
    """

    def __init__(
        self,
        mediator: Mediator,
        config: MetasearcherConfig | None = None,
        estimator: RelevancyEstimator | None = None,
        policy: ProbePolicy | None = None,
        analyzer: Analyzer | None = None,
    ) -> None:
        self._mediator = mediator
        self._config = config or MetasearcherConfig()
        self._estimator = estimator or TermIndependenceEstimator()
        self._policy = policy or GreedyUsefulnessPolicy()
        self._analyzer = analyzer or Analyzer()
        self._classifier = QueryTypeClassifier(
            estimate_thresholds=self._config.estimate_thresholds
        )
        self._summaries: dict[str, ContentSummary] | None = None
        self._error_model: ErrorModel | None = None
        self._selector: RDBasedSelector | None = None
        self._apro: APro | None = None
        self._prefilter = None  # PrefilterTier in "topm" mode

    # -- training ---------------------------------------------------------------

    def train(
        self,
        training_queries: Sequence[Query],
        checkpoint_path=None,
        resume: bool = False,
    ) -> None:
        """Build summaries and learn the error model (offline phase).

        With ``config.train_workers > 1`` or a *checkpoint_path*,
        training runs through the serving layer's
        :class:`~repro.service.training.ParallelEDTrainer` —
        concurrent, fault-tolerant, periodically checkpointed and
        resumable with ``resume=True`` — producing the bit-identical
        trained state of the sequential path.
        """
        if not training_queries:
            raise ConfigurationError("training requires at least one query")
        self._summaries = self._build_summaries()
        self._error_model = self._train_error_model(
            training_queries, checkpoint_path, resume
        )
        self._selector = RDBasedSelector(
            mediator=self._mediator,
            summaries=self._summaries,
            estimator=self._estimator,
            error_model=self._error_model,
            classifier=self._classifier,
            definition=self._config.definition,
        )
        self._finish_setup()

    def _finish_setup(self) -> None:
        """Build the APro runner (and prefilter tier) over the selector.

        Shared by :meth:`train` and :meth:`load`: exact bound pruning is
        an APro flag; the ``"topm"`` prefilter tier additionally probes
        one anchor query per topic to learn database-topic affinities.
        """
        mode = self._config.prune_mode
        if mode == "topm" and self._prefilter is None:
            from repro.metasearch.prefilter import PrefilterTier

            self._prefilter = PrefilterTier.train(
                self._mediator,
                self._config.definition,
                analyzer=self._analyzer,
            )
        self._apro = APro(
            self._selector,
            policy=self._policy,
            prune=mode in ("exact", "topm"),
        )

    def _train_error_model(
        self, training_queries: Sequence[Query], checkpoint_path, resume: bool
    ) -> ErrorModel:
        assert self._summaries is not None
        if self._config.train_workers == 1 and checkpoint_path is None:
            if resume:
                raise ConfigurationError(
                    "resume=True requires a checkpoint_path"
                )
            trainer = EDTrainer(
                mediator=self._mediator,
                summaries=self._summaries,
                estimator=self._estimator,
                classifier=self._classifier,
                definition=self._config.definition,
                samples_per_type=self._config.samples_per_type,
            )
            self._train_metrics = None
            return trainer.train(training_queries)
        # Imported here: repro.service imports this module at its top.
        from repro.service.training import ParallelEDTrainer

        with ParallelEDTrainer(
            mediator=self._mediator,
            summaries=self._summaries,
            estimator=self._estimator,
            classifier=self._classifier,
            definition=self._config.definition,
            samples_per_type=self._config.samples_per_type,
            max_workers=self._config.train_workers,
            checkpoint_path=checkpoint_path,
            checkpoint_every=self._config.train_checkpoint_every,
        ) as trainer:
            model = trainer.train(training_queries, resume=resume)
        self._train_metrics = trainer.metrics
        return model

    @property
    def train_metrics(self):
        """Metrics of the last parallel training run (``None`` otherwise)."""
        return getattr(self, "_train_metrics", None)

    def _build_summaries(self) -> dict[str, ContentSummary]:
        sampling = self._config.summary_sampling
        if sampling is None:
            builder = ExactSummaryBuilder()
            return {db.name: builder.build(db) for db in self._mediator}
        seed_terms = [
            term
            for word in self._config.summary_seed_terms
            for term in self._analyzer.analyze(word)
        ]
        sampled_builder = SampledSummaryBuilder(
            seed_terms=seed_terms,
            target_documents=sampling,
            analyzer=self._analyzer,
        )
        return {db.name: sampled_builder.build(db) for db in self._mediator}

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`train` has completed."""
        return self._apro is not None

    @property
    def config(self) -> MetasearcherConfig:
        """The pipeline configuration."""
        return self._config

    @property
    def policy(self) -> ProbePolicy:
        """The probe-order policy."""
        return self._policy

    @property
    def mediator(self) -> Mediator:
        """The mediated databases."""
        return self._mediator

    @property
    def selector(self) -> RDBasedSelector:
        """The trained RD-based selector (raises before training)."""
        self._require_trained()
        assert self._selector is not None
        return self._selector

    @property
    def error_model(self) -> ErrorModel:
        """The trained error model (raises before training)."""
        self._require_trained()
        assert self._error_model is not None
        return self._error_model

    @property
    def summaries(self) -> dict[str, ContentSummary]:
        """Per-database content summaries (raises before training)."""
        self._require_trained()
        assert self._summaries is not None
        return self._summaries

    def _require_trained(self) -> None:
        if self._apro is None:
            raise ReproError("call train() before querying the metasearcher")

    @classmethod
    def from_trained(
        cls,
        trained: "Metasearcher",
        config: MetasearcherConfig | None = None,
    ) -> "Metasearcher":
        """A new query-ready metasearcher sharing *trained*'s state.

        The trained artifacts (summaries, error model, selector) are
        referenced, not copied — training is deterministic and
        read-only at query time, so clones are answer-identical to the
        original under the same config. This is how the benches compare
        prune modes over one training run instead of retraining per
        mode.
        """
        trained._require_trained()
        clone = cls(
            trained._mediator,
            config or trained._config,
            estimator=trained._estimator,
            policy=trained._policy,
            analyzer=trained._analyzer,
        )
        clone._classifier = trained._classifier
        clone._summaries = trained._summaries
        clone._error_model = trained._error_model
        clone._selector = trained._selector
        clone._finish_setup()
        return clone

    # -- persistence ------------------------------------------------------------

    def save(self, path) -> None:
        """Persist the trained state (summaries + error model) to JSON.

        The databases themselves are not stored; see
        :mod:`repro.persistence`.
        """
        from repro.persistence import TrainedState, save_trained_state

        self._require_trained()
        assert self._summaries is not None and self._error_model is not None
        state = TrainedState(
            summaries=self._summaries,
            error_model=self._error_model,
            estimate_thresholds=self._classifier.estimate_thresholds,
            term_counts=self._classifier.term_counts,
            definition=self._config.definition,
        )
        save_trained_state(state, path)

    def load(self, path) -> None:
        """Restore a :meth:`save` file, making the instance query-ready.

        The mediator's databases must all have summaries in the file.
        """
        from repro.persistence import load_trained_state

        state = load_trained_state(path)
        self._summaries = state.summaries
        self._error_model = state.error_model
        self._classifier = state.classifier()
        self._selector = state.selector(self._mediator, self._estimator)
        self._finish_setup()

    # -- querying -------------------------------------------------------------

    def analyze(self, query: Query | str) -> Query:
        """Normalize free text into a :class:`~repro.types.Query`.

        Already-analyzed queries pass through unchanged; the serving
        layer uses this to build cache keys.
        """
        if isinstance(query, Query):
            return query
        return self._analyzer.query(query)

    # Backwards-compatible private alias.
    _as_query = analyze

    @property
    def prefilter(self):
        """The trained prefilter tier (``None`` outside ``"topm"`` mode)."""
        return self._prefilter

    def prefilter_keep(
        self, query: Query | str, k: int
    ) -> tuple[int, ...] | None:
        """Mediation indices the prefilter tier keeps for *query*.

        ``None`` when the tier is inactive (prune mode ``"off"`` or
        ``"exact"``) — i.e. when selection considers every database.
        The keep set is at least ``max(prefilter_top_m, k)`` wide so a
        top-k request is always satisfiable.
        """
        if self._prefilter is None:
            return None
        return self._prefilter.keep(
            self._as_query(query),
            top_m=max(self._config.prefilter_top_m, k),
        )

    def select(
        self,
        query: Query | str,
        k: int,
        certainty: float = 0.0,
        batch_size: int | None = None,
        max_probes: int | None = None,
        force_probes: int | None = None,
    ) -> ProbeSession:
        """Select k databases, probing until *certainty* is reached.

        ``certainty=0`` yields pure RD-based selection (zero probes).
        *batch_size* and *max_probes* override the configured values
        for this call; *force_probes* floors the probe count (setting
        both to the same value pins the probe budget exactly, which is
        how ``bench-scale`` holds the workload constant across
        federation sizes).
        """
        self._require_trained()
        assert self._apro is not None
        analyzed = self._as_query(query)
        return self._apro.run(
            analyzed,
            k=k,
            threshold=certainty,
            metric=self._config.metric,
            max_probes=(
                self._config.max_probes
                if max_probes is None
                else max_probes
            ),
            force_probes=force_probes,
            batch_size=(
                self._config.probe_batch_size
                if batch_size is None
                else batch_size
            ),
            keep=self.prefilter_keep(analyzed, k),
        )

    def select_without_probing(
        self, query: Query | str, k: int
    ) -> SelectionResult:
        """Pure RD-based selection (paper §6.2), returning RD internals."""
        self._require_trained()
        assert self._selector is not None
        return self._selector.select(
            self._as_query(query), k, self._config.metric
        )

    def search(
        self,
        query: Query | str,
        k: int,
        certainty: float = 0.0,
        limit: int = 10,
    ) -> MetasearchAnswer:
        """Full metasearch: select databases, query them, fuse results."""
        analyzed = self._as_query(query)
        session = self.select(analyzed, k, certainty)
        results = {
            name: self._mediator[name].probe(analyzed)
            for name in session.final.names
        }
        return MetasearchAnswer(
            query=analyzed,
            selected=session.final.names,
            certainty=session.final.expected_correctness,
            probes_used=session.num_probes,
            hits=merge_results(results, limit=limit),
        )

    def __repr__(self) -> str:
        return (
            f"Metasearcher(databases={len(self._mediator)}, "
            f"trained={self.is_trained})"
        )
