"""Tests for ``repro.obs``: request tracing across the serving stack.

The unit tests exercise the span machinery, sinks, and the per-tier
breakdown in isolation. The integration tests drive a real
:class:`MetasearchService` — in-process and with the multiprocess
selection pool — and a real gateway over TCP, asserting the span tree
stays connected (one trace id, every parent pointer resolving) across
the thread, event-loop, and process boundaries.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.gateway.client import GatewayClient
from repro.gateway.gateway import GatewayConfig, MetasearchGateway
from repro.obs import (
    FileTraceSink,
    MultiTraceSink,
    RingBufferTraceSink,
    StderrTraceSink,
    Tracer,
    collecting_trace,
    current_trace_id,
    format_tier_breakdown,
    load_spans,
    replay_spans,
    span,
    tier_breakdown,
    trace_active,
    wire_context,
)
from repro.service.resilience import RetryPolicy
from repro.service.server import MetasearchService, ServiceConfig


def make_tracer(capacity: int = 64, **kwargs):
    sink = RingBufferTraceSink(capacity, **kwargs)
    return Tracer(sink), sink


# -- span machinery ------------------------------------------------------------


class TestSpanMachinery:
    def test_span_is_noop_without_active_trace(self):
        assert not trace_active()
        assert current_trace_id() is None
        with span("orphan") as opened:
            # The shared null object: accepts the full span API,
            # records nothing.
            opened.set_outcome("degraded")
            opened.set_fingerprint("abc")
            opened.annotate(key="value")
        assert current_trace_id() is None

    def test_root_span_id_is_trace_id(self):
        tracer, sink = make_tracer()
        with tracer.trace("root"):
            assert trace_active()
            trace_id = current_trace_id()
        (record,) = sink.recent()
        assert record["trace_id"] == trace_id
        assert record["span_id"] == trace_id
        assert record["parent_id"] is None
        assert record["outcome"] == "ok"
        assert record["wall_ms"] >= 0.0

    def test_nested_spans_parent_correctly(self):
        tracer, sink = make_tracer()
        with tracer.trace("root"):
            with span("child"):
                with span("grandchild"):
                    pass
            with span("sibling"):
                pass
        records = {r["name"]: r for r in sink.recent()}
        assert len(records) == 4
        root = records["root"]
        assert records["child"]["parent_id"] == root["span_id"]
        assert (
            records["grandchild"]["parent_id"]
            == records["child"]["span_id"]
        )
        assert records["sibling"]["parent_id"] == root["span_id"]
        assert {r["trace_id"] for r in sink.recent()} == {
            root["trace_id"]
        }

    def test_exception_sets_error_outcome(self):
        tracer, sink = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("root"):
                with span("failing"):
                    raise RuntimeError("boom")
        records = {r["name"]: r for r in sink.recent()}
        assert records["failing"]["outcome"] == "error"
        assert records["root"]["outcome"] == "error"

    def test_explicit_outcome_survives_exception(self):
        tracer, sink = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("root"):
                with span("shedding") as opened:
                    opened.set_outcome("shed")
                    raise RuntimeError("overloaded")
        records = {r["name"]: r for r in sink.recent()}
        assert records["shedding"]["outcome"] == "shed"

    def test_fingerprint_and_attrs_in_record(self):
        tracer, sink = make_tracer()
        with tracer.trace("root", fingerprint="deadbeef", phase="x"):
            with span("child") as child:
                child.set_fingerprint("cafebabe")
                child.annotate(batch=3)
        records = {r["name"]: r for r in sink.recent()}
        assert records["root"]["fingerprint"] == "deadbeef"
        assert records["root"]["attrs"] == {"phase": "x"}
        assert records["child"]["fingerprint"] == "cafebabe"
        assert records["child"]["attrs"] == {"batch": 3}

    def test_records_are_json_able(self):
        tracer, sink = make_tracer()
        with tracer.trace("root"):
            with span("child"):
                pass
        for record in sink.recent():
            json.dumps(record)


class TestProcessBoundary:
    def test_wire_context_round_trip(self):
        # The pool's pipe protocol in miniature: serialize the parent
        # position, collect spans "in the worker", replay them back.
        tracer, sink = make_tracer()
        with tracer.trace("root"):
            with span("pool.dispatch"):
                wire = wire_context()
                assert wire is not None
                parent_trace_id = current_trace_id()
        assert wire["trace_id"] == parent_trace_id

        # Worker side: no ambient trace, only the wire context.
        assert not trace_active()
        with collecting_trace(wire) as records:
            assert trace_active()
            assert current_trace_id() == parent_trace_id
            with span("pool.worker"):
                with span("worker.inner"):
                    pass
        assert not trace_active()
        assert [r["name"] for r in records] == [
            "worker.inner",
            "pool.worker",
        ]
        worker = next(r for r in records if r["name"] == "pool.worker")
        assert worker["trace_id"] == parent_trace_id
        assert worker["parent_id"] == wire["parent_id"]

        # Parent side again: replay lands the records in the sink.
        with tracer.trace("second"):
            replay_spans(records)
        names = [r["name"] for r in sink.recent()]
        assert "pool.worker" in names and "worker.inner" in names

    def test_wire_context_is_none_without_trace(self):
        assert wire_context() is None

    def test_collecting_trace_without_wire_collects_nothing(self):
        with collecting_trace(None) as records:
            assert not trace_active()
            with span("ignored"):
                pass
        assert records == []

    def test_replay_without_active_trace_is_noop(self):
        replay_spans([{"name": "stray"}])  # must not raise


# -- sinks ---------------------------------------------------------------------


class TestRingBufferSink:
    def test_keeps_most_recent_and_counts_drops(self):
        drops = []
        sink = RingBufferTraceSink(3, on_drop=lambda: drops.append(1))
        for index in range(5):
            sink.emit({"name": f"s{index}"})
        assert [r["name"] for r in sink.recent()] == ["s2", "s3", "s4"]
        assert sink.dropped == 2
        assert len(drops) == 2
        assert len(sink) == 3

    def test_recent_limit_and_copies(self):
        sink = RingBufferTraceSink(8)
        for index in range(4):
            sink.emit({"name": f"s{index}"})
        tail = sink.recent(2)
        assert [r["name"] for r in tail] == ["s2", "s3"]
        tail[0]["name"] = "mutated"
        assert sink.recent(2)[0]["name"] == "s2"

    def test_clear(self):
        sink = RingBufferTraceSink(4)
        sink.emit({"name": "s"})
        sink.clear()
        assert sink.recent() == []

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferTraceSink(0)


class TestStreamAndFileSinks:
    def test_stderr_sink_writes_ndjson(self):
        stream = io.StringIO()
        sink = StderrTraceSink(stream)
        sink.emit({"name": "a", "wall_ms": 1.0})
        sink.emit({"name": "b", "wall_ms": 2.0})
        lines = stream.getvalue().strip().split("\n")
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_file_sink_round_trip(self, tmp_path):
        path = str(tmp_path / "spans.ndjson")
        with FileTraceSink(path) as sink:
            sink.emit({"name": "a"})
            sink.emit({"name": "b"})
            assert sink.emitted == 2
        # Emit-after-close is silently dropped (a late probe thread
        # must not crash a bench that already collected its report).
        sink.emit({"name": "late"})
        assert sink.emitted == 2
        sink.close()  # idempotent
        assert [r["name"] for r in load_spans(path)] == ["a", "b"]

    def test_multi_sink_fans_out_and_delegates_recent(self):
        ring = RingBufferTraceSink(4)
        stream = io.StringIO()
        multi = MultiTraceSink(ring, StderrTraceSink(stream))
        multi.emit({"name": "a"})
        assert [r["name"] for r in multi.recent()] == ["a"]
        assert json.loads(stream.getvalue())["name"] == "a"

    def test_tracer_recent_on_writeonly_sink_is_empty(self):
        tracer = Tracer(StderrTraceSink(io.StringIO()))
        with tracer.trace("root"):
            pass
        assert tracer.recent() == []


# -- the per-tier breakdown ----------------------------------------------------


class TestTierBreakdown:
    RECORDS = [
        {"name": "gateway.request", "wall_ms": 100.0},
        {"name": "service.serve", "wall_ms": 90.0},
        {"name": "probe.onco", "wall_ms": 30.0},
        {"name": "probe.cardio", "wall_ms": 50.0},
        {"name": "service.analyze", "wall_ms": 1.0},
        {"name": "", "wall_ms": 5.0},  # skipped: unnamed
        {"name": "service.cache"},  # skipped: no wall
    ]

    def test_collapses_probe_names_and_orders_by_total(self):
        breakdown = tier_breakdown(self.RECORDS)
        assert list(breakdown) == [
            "gateway.request",
            "service.serve",
            "probe.*",
            "service.analyze",
        ]
        probes = breakdown["probe.*"]
        assert probes["count"] == 2
        assert probes["total_ms"] == pytest.approx(80.0)
        assert probes["mean_ms"] == pytest.approx(40.0)
        assert probes["p50_ms"] == pytest.approx(30.0)
        assert probes["max_ms"] == pytest.approx(50.0)

    def test_format_renders_every_tier(self):
        table = format_tier_breakdown(tier_breakdown(self.RECORDS))
        lines = table.split("\n")
        assert lines[0].split()[0] == "span"
        for name in ("gateway.request", "probe.*", "service.analyze"):
            assert any(line.startswith(name) for line in lines)

    def test_format_empty(self):
        assert format_tier_breakdown({}) == "(no spans)"

    def test_load_spans_skips_blank_lines(self, tmp_path):
        path = tmp_path / "spans.ndjson"
        path.write_text('{"name": "a"}\n\n{"name": "b"}\n')
        assert [r["name"] for r in load_spans(str(path))] == ["a", "b"]


# -- ServiceConfig knobs -------------------------------------------------------


class TestServiceConfigTrace:
    def test_default_reads_env_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert ServiceConfig().trace is False

    @pytest.mark.parametrize(
        "raw, trace, stderr",
        [("1", True, False), ("0", False, False), ("stderr", True, True)],
    )
    def test_env_values(self, monkeypatch, raw, trace, stderr):
        monkeypatch.setenv("REPRO_TRACE", raw)
        config = ServiceConfig()
        assert config.trace is trace
        assert config.trace_stderr is stderr

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "yes-please")
        with pytest.raises(ConfigurationError):
            ServiceConfig()

    def test_explicit_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert ServiceConfig(trace=False).trace is False

    def test_bad_buffer_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(trace_buffer=0)


# -- service integration -------------------------------------------------------


def make_service(trained_metasearcher, trace=True, **config_kwargs):
    config = ServiceConfig(
        max_workers=4,
        batch_size=2,
        retry=RetryPolicy(backoff_base_s=0.0),
        trace=trace,
        **config_kwargs,
    )
    return MetasearchService(
        trained_metasearcher, config=config, sleeper=lambda s: None
    )


def probing_text(trained_metasearcher, health_queries) -> str:
    """A query that really probes at certainty=1.0 (probing is
    deterministic and content-keyed, so the throwaway service here
    replays the same probes the test's own service will see)."""
    with make_service(
        trained_metasearcher, trace=False, cache_enabled=False
    ) as service:
        for query in health_queries[40:]:
            text = " ".join(query.terms)
            if service.serve(text, k=2, certainty=1.0).probes >= 1:
                return text
    raise AssertionError("testbed produced no probing query")


def spans_by_name(records):
    by_name: dict[str, list[dict]] = {}
    for record in records:
        by_name.setdefault(record["name"], []).append(record)
    return by_name


def assert_connected(records):
    """Every record shares one trace id and every parent resolves."""
    trace_ids = {r["trace_id"] for r in records}
    assert len(trace_ids) == 1
    ids = {r["span_id"] for r in records}
    roots = [r for r in records if r["parent_id"] is None]
    assert len(roots) == 1
    (root,) = roots
    assert root["span_id"] == root["trace_id"]
    for record in records:
        if record["parent_id"] is not None:
            assert record["parent_id"] in ids
    return root


class TestServiceTracing:
    def test_direct_serve_builds_connected_tree(
        self, trained_metasearcher, health_queries
    ):
        text = probing_text(trained_metasearcher, health_queries)
        with make_service(trained_metasearcher) as service:
            answer = service.serve(text, k=2, certainty=1.0)
            records = service.trace_spans()
        assert answer.selected
        root = assert_connected(records)
        assert root["name"] == "service.serve"
        names = spans_by_name(records)
        assert "service.analyze" in names
        assert "service.cache" in names
        # Direct-serve spans carry the model fingerprint at the root.
        assert root["fingerprint"] == service.state_fingerprint

    def test_cache_hit_outcome(self, trained_metasearcher, health_queries):
        text = " ".join(health_queries[42].terms)
        with make_service(trained_metasearcher) as service:
            service.serve(text, k=2, certainty=0.9)
            service.serve(text, k=2, certainty=0.9)
            records = service.trace_spans()
        cache_spans = spans_by_name(records)["service.cache"]
        assert [s["outcome"] for s in cache_spans] == ["miss", "hit"]

    def test_trace_spans_empty_when_disabled(
        self, trained_metasearcher, health_queries
    ):
        text = " ".join(health_queries[41].terms)
        with make_service(trained_metasearcher, trace=False) as service:
            service.serve(text, k=2, certainty=0.9)
            assert service.tracer is None
            assert service.trace_spans() == []

    def test_instrument_keyset_is_trace_invariant(
        self, trained_metasearcher, health_queries
    ):
        # The obs instruments are pre-registered whether or not tracing
        # is on: enabling it must never change the metrics key-set
        # (the serving layer's stable-key-set convention).
        text = " ".join(health_queries[41].terms)
        snapshots = {}
        for trace in (False, True):
            with make_service(trained_metasearcher, trace=trace) as service:
                service.serve(text, k=2, certainty=0.9)
                snapshots[trace] = service.snapshot()
        for snapshot in snapshots.values():
            counters = snapshot["counters"]
            assert "trace_spans_total" in counters
            assert "trace_spans_dropped" in counters
            assert set(snapshot["trace"]) == {"enabled", "buffered"}
        assert set(snapshots[False]["counters"]) == set(
            snapshots[True]["counters"]
        )
        assert snapshots[False]["trace"]["enabled"] is False
        assert snapshots[True]["trace"]["enabled"] is True
        assert snapshots[True]["counters"]["trace_spans_total"] > 0
        assert (
            snapshots[True]["trace"]["buffered"]
            == snapshots[True]["counters"]["trace_spans_total"]
        )
        assert snapshots[False]["counters"]["trace_spans_total"] == 0

    def test_tracing_does_not_change_answers(
        self, trained_metasearcher, health_queries
    ):
        texts = [" ".join(q.terms) for q in health_queries[40:46]]
        with make_service(
            trained_metasearcher, trace=False, cache_enabled=False
        ) as plain:
            expected = [
                plain.serve(text, k=2, certainty=1.0).selected
                for text in texts
            ]
        with make_service(
            trained_metasearcher, trace=True, cache_enabled=False
        ) as traced:
            got = [
                traced.serve(text, k=2, certainty=1.0).selected
                for text in texts
            ]
        assert got == expected

    def test_ring_buffer_eviction_feeds_dropped_counter(
        self, trained_metasearcher, health_queries
    ):
        text = probing_text(trained_metasearcher, health_queries)
        with make_service(
            trained_metasearcher, trace_buffer=2, cache_enabled=False
        ) as service:
            service.serve(text, k=2, certainty=1.0)
            snapshot = service.snapshot()
        assert snapshot["trace"]["buffered"] == 2
        assert snapshot["counters"]["trace_spans_dropped"] > 0

    def test_extra_sink_receives_records(
        self, trained_metasearcher, health_queries, tmp_path
    ):
        path = str(tmp_path / "spans.ndjson")
        sink = FileTraceSink(path)
        text = " ".join(health_queries[41].terms)
        config = ServiceConfig(
            max_workers=4,
            batch_size=2,
            retry=RetryPolicy(backoff_base_s=0.0),
            trace=True,
        )
        with MetasearchService(
            trained_metasearcher,
            config=config,
            sleeper=lambda s: None,
            trace_sink=sink,
        ) as service:
            service.serve(text, k=2, certainty=0.9)
            ring = service.trace_spans()
        sink.close()
        assert [r["name"] for r in load_spans(path)] == [
            r["name"] for r in ring
        ]


class TestPoolTracing:
    def test_span_tree_survives_the_process_boundary(
        self, trained_metasearcher, health_queries
    ):
        text = probing_text(trained_metasearcher, health_queries)
        with make_service(
            trained_metasearcher,
            pool_workers=1,
            cache_enabled=False,
        ) as service:
            answer = service.serve(text, k=2, certainty=1.0)
            records = service.trace_spans()
        assert answer.selected
        root = assert_connected(records)
        assert root["name"] == "service.serve"
        names = spans_by_name(records)
        assert "pool.dispatch" in names
        # The worker-side span crossed the pipe and was replayed into
        # the parent trace, parented under the dispatch span.
        (worker,) = names["pool.worker"]
        (dispatch,) = names["pool.dispatch"]
        assert worker["trace_id"] == root["trace_id"]
        assert worker["parent_id"] == dispatch["span_id"]
        assert worker["fingerprint"] == service.state_fingerprint
        # Probe rounds run parent-side (the pool's callback protocol),
        # inside the dispatch span.
        assert answer.probes > 0
        probe_records = [
            r for r in records if r["name"].startswith("probe.")
        ]
        assert probe_records
        for probe in probe_records:
            assert probe["parent_id"] == dispatch["span_id"]

    def test_untraced_pool_payloads_carry_no_span_fields(
        self, trained_metasearcher, health_queries
    ):
        # With tracing off the wire payloads stay byte-identical to the
        # pre-tracing format: no "trace" key out, no "spans" key back.
        from repro.service.pool import PoolRequest

        request = PoolRequest(
            query=health_queries[41],
            k=2,
            threshold=0.9,
            metric_name="P1",
            fingerprint="f",
        )
        assert "trace" not in request.wire()
        text = " ".join(health_queries[41].terms)
        with make_service(
            trained_metasearcher,
            trace=False,
            pool_workers=1,
            cache_enabled=False,
        ) as service:
            answer = service.serve(text, k=2, certainty=1.0)
        assert answer.selected


class TestGatewayTracing:
    def _run_gateway_search(
        self, service, texts, *, trace_limit=256, **search_kwargs
    ):
        async def scenario():
            gateway = MetasearchGateway(service, GatewayConfig())
            await gateway.start()
            async with gateway:
                client = await GatewayClient.connect(
                    "127.0.0.1", gateway.port
                )
                try:
                    results = [
                        await client.search(text, **search_kwargs)
                        for text in texts
                    ]
                    trace = await client.trace(limit=trace_limit)
                    return results, trace
                finally:
                    await client.close()

        return asyncio.run(scenario())

    def test_gateway_request_produces_connected_tree(
        self, trained_metasearcher, health_queries
    ):
        text = probing_text(trained_metasearcher, health_queries)
        with make_service(
            trained_metasearcher, cache_enabled=False
        ) as service:
            (result,), trace = self._run_gateway_search(
                service, [text], k=2, certainty=1.0
            )
            records = service.trace_spans()
            snapshot = service.snapshot()
        assert trace["enabled"] is True
        assert [r["name"] for r in trace["spans"]] == [
            r["name"] for r in records
        ]
        root = assert_connected(records)
        assert root["name"] == "gateway.request"
        assert result["served"]["trace_id"] == root["trace_id"]
        names = spans_by_name(records)
        for name in (
            "gateway.admit",
            "gateway.queue",
            "service.serve",
            "service.analyze",
        ):
            assert name in names, f"missing {name} span"
        assert any(r["name"].startswith("probe.") for r in records)
        # The root span covers the same interval gateway_request_ms
        # measures, so the per-tier children must account for it:
        # admit + queue + serve (the three sequential stages) sum to
        # the root's wall within 5% (plus a small absolute floor for
        # scheduler noise on a fast request).
        (request_span,) = names["gateway.request"]
        staged = sum(
            names[name][0]["wall_ms"]
            for name in ("gateway.admit", "gateway.queue", "service.serve")
        )
        tolerance = max(0.05 * request_span["wall_ms"], 5.0)
        assert abs(request_span["wall_ms"] - staged) <= tolerance
        request_ms = snapshot["histograms"]["gateway_request_ms"]
        assert request_ms["count"] == 1
        assert abs(request_span["wall_ms"] - request_ms["mean"]) <= max(
            0.05 * request_ms["mean"], 5.0
        )

    def test_gateway_tree_spans_pool_and_probes(
        self, trained_metasearcher, health_queries
    ):
        # The acceptance criterion end-to-end: one request id from the
        # gateway through the service, across the pool's pipe into the
        # worker, and over the parent-side probe threads.
        text = probing_text(trained_metasearcher, health_queries)
        with make_service(
            trained_metasearcher,
            pool_workers=1,
            cache_enabled=False,
        ) as service:
            (result,), _ = self._run_gateway_search(
                service, [text], k=2, certainty=1.0
            )
            records = service.trace_spans()
        root = assert_connected(records)
        assert root["name"] == "gateway.request"
        names = spans_by_name(records)
        for name in (
            "gateway.admit",
            "gateway.queue",
            "service.serve",
            "pool.dispatch",
            "pool.worker",
        ):
            assert name in names, f"missing {name} span"
        assert any(r["name"].startswith("probe.") for r in records)
        assert result["served"]["trace_id"] == root["trace_id"]

    def test_trace_op_respects_limit(
        self, trained_metasearcher, health_queries
    ):
        texts = [" ".join(q.terms) for q in health_queries[40:43]]
        with make_service(
            trained_metasearcher, cache_enabled=False
        ) as service:
            _, trace = self._run_gateway_search(
                service, texts, trace_limit=2, k=2, certainty=0.9
            )
            all_records = service.trace_spans()
        assert len(trace["spans"]) == 2
        assert trace["spans"] == all_records[-2:]

    def test_trace_op_when_disabled(
        self, trained_metasearcher, health_queries
    ):
        text = " ".join(health_queries[41].terms)
        with make_service(
            trained_metasearcher, trace=False
        ) as service:
            (result,), trace = self._run_gateway_search(
                service, [text], k=2, certainty=0.9
            )
        assert trace == {"enabled": False, "spans": []}
        assert "trace_id" not in result["served"]
