"""Regression snapshot: headline numbers at a fixed miniature scale.

Everything in the library is deterministic, so the key experiment
outputs at a pinned configuration act as a change detector: if an
algorithmic edit shifts these numbers, this test makes the shift visible
(update the expectations deliberately, with EXPERIMENTS.md, if the
change is intended). Tolerances are wide enough to survive harmless
floating-point reordering but tight enough to catch behavioural change.
"""

import pytest

from repro.core.topk import CorrectnessMetric
from repro.experiments.harness import evaluate_selection_quality, train_pipeline
from repro.experiments.setup import PaperSetupConfig, build_paper_context

PINNED = PaperSetupConfig(scale=0.06, seed=2004, n_train=200, n_test=40)


@pytest.fixture(scope="module")
def pinned_context():
    return build_paper_context(PINNED)


@pytest.fixture(scope="module")
def pinned_pipeline(pinned_context):
    return train_pipeline(pinned_context, samples_per_type=30)


class TestPinnedNumbers:
    def test_setup_statistics(self, pinned_context):
        sizes = [db.size for db in pinned_context.mediator]
        assert sum(sizes) == 2671
        assert len(pinned_context.train_queries) == 200
        assert len(pinned_context.test_queries) == 40

    def test_selection_quality_snapshot(self, pinned_context, pinned_pipeline):
        results = evaluate_selection_quality(
            pinned_context, pinned_pipeline, k_values=(1,)
        )
        by_method = {r.method: r for r in results}
        baseline = by_method["term-independence estimator (baseline)"]
        rd_based = by_method["RD-based, no probing"]
        # Exact values at this pinned configuration (40 test queries →
        # correctness is a multiple of 0.025).
        assert baseline.avg_absolute == pytest.approx(0.425, abs=1e-9)
        assert rd_based.avg_absolute == pytest.approx(0.575, abs=1e-9)

    def test_rd_selection_deterministic(self, pinned_context, pinned_pipeline):
        query = pinned_context.test_queries[0]
        first = pinned_pipeline.rd_selector.select(
            query, 1, CorrectnessMetric.ABSOLUTE
        )
        second = pinned_pipeline.rd_selector.select(
            query, 1, CorrectnessMetric.ABSOLUTE
        )
        assert first.names == second.names
        assert first.expected_correctness == second.expected_correctness

    def test_error_model_sample_total(self, pinned_context, pinned_pipeline):
        # Total training samples is a sensitive fingerprint of the
        # training loop (caps, skips, classification).
        model = pinned_pipeline.error_model
        assert model._global.sample_count > 0
        assert repr(model).startswith("ErrorModel(")
