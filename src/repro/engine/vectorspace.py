"""tf-idf vector-space scoring (cosine similarity).

Implements the classic lnc.ltc-style weighting used as the
document-similarity relevancy surrogate in the paper (Salton & Buckley):
``w = (1 + log tf) * (log(N/df) + 1)``, cosine-normalized on the document
side. Scores are accumulated term-at-a-time over postings, so only
documents containing at least one query term are touched.
"""

from __future__ import annotations

import math

from repro.engine.index import InvertedIndex
from repro.types import Query, ScoredDocument

__all__ = ["VectorSpaceScorer"]


class VectorSpaceScorer:
    """Cosine tf-idf scorer over a frozen :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex) -> None:
        index.freeze()
        self._index = index

    def score_all(self, query: Query) -> dict[int, float]:
        """Map doc_id -> cosine similarity for docs sharing >=1 term."""
        index = self._index
        query_weights: dict[str, float] = {}
        for term in query.terms:
            idf = index.idf(term)
            if idf > 0.0:
                # Query tf is 1 per distinct term (queries are term sets).
                query_weights[term] = idf
        if not query_weights:
            return {}
        query_norm = math.sqrt(sum(w * w for w in query_weights.values()))
        scores: dict[int, float] = {}
        for term, q_weight in query_weights.items():
            plist = index.postings(term)
            if plist is None:
                continue
            idf = index.idf(term)
            for doc_id, freq in plist:
                d_weight = (1.0 + math.log(freq)) * idf
                scores[doc_id] = scores.get(doc_id, 0.0) + q_weight * d_weight
        for doc_id in scores:
            scores[doc_id] /= query_norm * index.document_norm(doc_id)
        return scores

    def top_k(self, query: Query, k: int) -> list[ScoredDocument]:
        """The *k* highest-cosine documents, ties broken by lower doc id."""
        scores = self.score_all(query)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [ScoredDocument(doc_id, score) for doc_id, score in ranked[:k]]
