"""Unit tests for the Hidden-Web layer: databases, accounting, mediator."""

import pytest

from repro.exceptions import ConfigurationError, UnknownDatabaseError
from repro.hiddenweb.accounting import ProbeAccounting, ProbeSnapshot
from repro.hiddenweb.database import HiddenWebDatabase, RelevancyDefinition
from repro.hiddenweb.mediator import Mediator
from repro.text.analyzer import Analyzer
from repro.types import Document, Query


@pytest.fixture()
def small_db():
    documents = [
        Document(0, "breast cancer treatment"),
        Document(1, "cancer research trials"),
        Document(2, "heart disease study"),
    ]
    return HiddenWebDatabase(
        "test-db", documents, Analyzer(stem=False), page_size=2
    )


class TestProbeAccounting:
    def test_starts_at_zero(self):
        acc = ProbeAccounting()
        assert acc.probes == 0
        assert acc.documents_downloaded == 0

    def test_record_probe(self):
        acc = ProbeAccounting()
        acc.record_probe(documents_downloaded=3)
        acc.record_probe()
        assert acc.probes == 2
        assert acc.documents_downloaded == 3

    def test_record_download(self):
        acc = ProbeAccounting()
        acc.record_download(2)
        assert acc.probes == 0
        assert acc.documents_downloaded == 2

    def test_negative_rejected(self):
        acc = ProbeAccounting()
        with pytest.raises(ValueError):
            acc.record_probe(documents_downloaded=-1)
        with pytest.raises(ValueError):
            acc.record_download(-1)

    def test_snapshot_subtraction(self):
        acc = ProbeAccounting()
        acc.record_probe(1)
        before = acc.snapshot()
        acc.record_probe(2)
        delta = acc.snapshot() - before
        assert delta == ProbeSnapshot(probes=1, documents_downloaded=2)

    def test_reset(self):
        acc = ProbeAccounting()
        acc.record_probe(5)
        acc.reset()
        assert acc.probes == 0
        assert acc.documents_downloaded == 0


class TestHiddenWebDatabase:
    def test_size(self, small_db):
        assert small_db.size == 3

    def test_probe_returns_result_and_charges(self, small_db):
        result = small_db.probe(Query(("cancer",)))
        assert result.num_matches == 2
        assert small_db.accounting.probes == 1

    def test_probe_relevancy_frequency(self, small_db):
        value = small_db.probe_relevancy(Query(("cancer",)))
        assert value == 2.0

    def test_probe_relevancy_similarity(self, small_db):
        value = small_db.probe_relevancy(
            Query(("cancer",)), RelevancyDefinition.DOCUMENT_SIMILARITY
        )
        assert 0.0 < value <= 1.0

    def test_oracle_relevancy_is_free(self, small_db):
        before = small_db.accounting.probes
        value = small_db.relevancy(Query(("cancer", "research")))
        assert value == 1.0
        assert small_db.accounting.probes == before

    def test_oracle_matches_probe(self, small_db):
        query = Query(("cancer", "treatment"))
        assert small_db.relevancy(query) == float(
            small_db.probe(query).num_matches
        )

    def test_similarity_zero_for_absent_terms(self, small_db):
        value = small_db.relevancy(
            Query(("zebra",)), RelevancyDefinition.DOCUMENT_SIMILARITY
        )
        assert value == 0.0

    def test_fetch_document_counts_download(self, small_db):
        doc = small_db.fetch_document(1)
        assert doc.doc_id == 1
        assert small_db.accounting.documents_downloaded >= 1


class TestMediator:
    def test_from_documents(self, tiny_corpora, analyzer):
        mediator = Mediator.from_documents(tiny_corpora, analyzer=analyzer)
        assert len(mediator) == len(tiny_corpora)
        assert set(mediator.names) == set(tiny_corpora)

    def test_lookup_by_name_and_index(self, tiny_mediator):
        first = tiny_mediator[0]
        assert tiny_mediator[first.name] is first

    def test_position_round_trip(self, tiny_mediator):
        for idx, db in enumerate(tiny_mediator):
            assert tiny_mediator.position(db.name) == idx

    def test_unknown_name(self, tiny_mediator):
        with pytest.raises(UnknownDatabaseError):
            tiny_mediator["missing-db"]
        with pytest.raises(UnknownDatabaseError):
            tiny_mediator.position("missing-db")

    def test_contains(self, tiny_mediator):
        assert tiny_mediator.names[0] in tiny_mediator
        assert "missing-db" not in tiny_mediator

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Mediator([])

    def test_duplicate_names_rejected(self):
        documents = [Document(0, "a b")]
        db_a = HiddenWebDatabase("same", documents)
        db_b = HiddenWebDatabase("same", documents)
        with pytest.raises(ConfigurationError):
            Mediator([db_a, db_b])

    def test_total_probes_and_reset(self, tiny_corpora, analyzer):
        mediator = Mediator.from_documents(tiny_corpora, analyzer=analyzer)
        query = Query(("cancer",))
        mediator[0].probe(query)
        mediator[1].probe(query)
        assert mediator.total_probes() == 2
        mediator.reset_accounting()
        assert mediator.total_probes() == 0

    def test_snapshot_keys(self, tiny_mediator):
        snapshot = tiny_mediator.snapshot()
        assert set(snapshot) == set(tiny_mediator.names)


class TestProbeAccountingThreadSafety:
    def test_concurrent_recording_is_exact(self):
        import threading

        acc = ProbeAccounting()

        def hammer():
            for _ in range(5_000):
                acc.record_probe(documents_downloaded=1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert acc.probes == 40_000
        assert acc.documents_downloaded == 40_000


class TestMediatorOrderingContract:
    """from_documents mediation order is the mapping's iteration order."""

    def _corpora(self, names):
        return {
            name: [Document(0, "breast cancer treatment")]
            for name in names
        }

    def test_order_follows_mapping_insertion_order(self):
        names = ["zeta", "alpha", "mid"]
        mediator = Mediator.from_documents(self._corpora(names))
        assert mediator.names == names
        assert [mediator.position(name) for name in names] == [0, 1, 2]

    def test_reversed_insertion_reverses_tiebreak_order(self):
        forward = Mediator.from_documents(self._corpora(["a", "b"]))
        backward = Mediator.from_documents(self._corpora(["b", "a"]))
        assert forward.names == ["a", "b"]
        assert backward.names == ["b", "a"]
        # Identical content: position, not name, breaks ties.
        query = Query(("cancer",))
        assert forward[0].relevancy(query) == backward[0].relevancy(query)

    def test_page_size_validated(self):
        with pytest.raises(ConfigurationError):
            Mediator.from_documents(self._corpora(["a"]), page_size=0)

    def test_database_page_size_validated(self):
        with pytest.raises(ValueError):
            HiddenWebDatabase(
                "bad", [Document(0, "text")], Analyzer(), page_size=0
            )
