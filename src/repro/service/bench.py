"""`repro-metasearch bench-serve` / `bench-train`: the service benchmarks.

``bench-serve`` builds the paper testbed, trains a metasearcher, then
replays the same deterministic query stream twice against
fault-injected databases — once through a single-worker (serial)
executor and once through a wide one — and reports wall-clock speedup,
whether the two paths returned byte-identical selections, and the
concurrent run's metrics snapshot.

``bench-train`` does the same for the *offline* phase: it runs the
identical ED-training workload through
:class:`~repro.service.training.ParallelEDTrainer` at one worker and at
N workers, under injected probe latency, and reports wall-clock speedup
plus whether the two trained models are byte-identical.

The fault schedules are pure functions of ``(seed, database, attempt)``
(see :mod:`repro.service.faults`), so both paths experience exactly the
same latencies and failures; any selection or trained-state difference
would be a real concurrency bug, which is why the benchmarks double as
end-to-end determinism checks.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.experiments.setup import PaperSetupConfig, build_paper_context
from repro.metasearch.metasearcher import Metasearcher, MetasearcherConfig
from repro.service.faults import FaultInjector
from repro.service.resilience import RetryPolicy
from repro.service.server import (
    MetasearchService,
    ServedAnswer,
    ServiceConfig,
)
from repro.service.training import ParallelEDTrainer
from repro.summaries.builder import ExactSummaryBuilder
from repro.summaries.estimators import TermIndependenceEstimator
from repro.types import Query

__all__ = [
    "build_trained_testbed",
    "BenchServeConfig",
    "BenchServeReport",
    "run_bench_serve",
    "format_bench_serve",
    "BenchTrainConfig",
    "BenchTrainReport",
    "run_bench_train",
    "format_bench_train",
]


def build_trained_testbed(
    scale: float = 0.05,
    seed: int = 2004,
    n_train: int = 200,
    n_test: int = 80,
    batch_size: int = 16,
    train_queries_cap: int | None = None,
    context: object | None = None,
):
    """Build the paper testbed and a trained metasearcher over it.

    The shared front half of every serving entry point (``bench-serve``,
    ``bench-gateway``, the ``serve`` and ``gateway`` CLI commands):
    construct the scaled paper context, train a metasearcher on its
    training queries (optionally capped), and return ``(context,
    metasearcher)``. Pass *context* to reuse an already-built testbed.
    """
    if context is None:
        context = build_paper_context(
            PaperSetupConfig(
                scale=scale, seed=seed, n_train=n_train, n_test=n_test
            )
        )
    metasearcher = Metasearcher(
        context.mediator,
        MetasearcherConfig(probe_batch_size=batch_size),
        analyzer=context.analyzer,
    )
    train = context.train_queries
    if train_queries_cap is not None:
        train = train[:train_queries_cap]
    metasearcher.train(train)
    return context, metasearcher


@dataclass(frozen=True)
class BenchServeConfig:
    """Knobs of the serving benchmark (defaults meet the PR's demo)."""

    scale: float = 0.05
    seed: int = 2004
    n_train: int = 200
    n_test: int = 80
    queries: int = 100
    unique_queries: int = 60
    k: int = 3
    certainty: float = 0.95
    batch_size: int = 16
    workers: int = 16
    mean_latency_ms: float = 50.0
    latency_jitter: float = 0.5
    error_rate: float = 0.02
    timeout_ms: float = 150.0
    max_retries: int = 2
    backoff_base_ms: float = 5.0
    cache_ttl_s: float | None = 300.0
    train_queries_cap: int | None = None
    context: object | None = field(default=None, compare=False)
    metasearcher: Metasearcher | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.queries < 1 or self.unique_queries < 1:
            raise ConfigurationError("query counts must be >= 1")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")


@dataclass(frozen=True)
class BenchServeReport:
    """What the benchmark measured."""

    databases: int
    queries: int
    unique_queries: int
    workers: int
    batch_size: int
    serial_s: float
    concurrent_s: float
    identical_selections: bool
    serial_selections: list[tuple[str, ...]]
    concurrent_selections: list[tuple[str, ...]]
    metrics: dict[str, object]

    @property
    def speedup(self) -> float:
        """Serial wall-clock over concurrent wall-clock."""
        if self.concurrent_s <= 0:
            return float("inf")
        return self.serial_s / self.concurrent_s


def _build_stream(
    test_queries: list[Query], config: BenchServeConfig
) -> list[Query]:
    unique = test_queries[: config.unique_queries]
    if not unique:
        raise ConfigurationError("testbed produced no test queries")
    rng = random.Random(config.seed + 77)
    return [rng.choice(unique) for _ in range(config.queries)]


def _service(
    metasearcher: Metasearcher, config: BenchServeConfig, workers: int
) -> MetasearchService:
    injector = FaultInjector(
        seed=config.seed,
        mean_latency_s=config.mean_latency_ms / 1000.0,
        latency_jitter=config.latency_jitter,
        error_rate=config.error_rate,
    )
    service_config = ServiceConfig(
        max_workers=workers,
        batch_size=config.batch_size,
        retry=RetryPolicy(
            timeout_s=config.timeout_ms / 1000.0,
            max_retries=config.max_retries,
            backoff_base_s=config.backoff_base_ms / 1000.0,
        ),
        cache_ttl_s=config.cache_ttl_s,
    )
    return MetasearchService(
        metasearcher, config=service_config, injector=injector
    )


def _replay(
    service: MetasearchService,
    stream: list[Query],
    config: BenchServeConfig,
) -> tuple[list[ServedAnswer], float]:
    started = time.perf_counter()
    answers = service.serve_stream(stream, k=config.k, certainty=config.certainty)
    return answers, time.perf_counter() - started


def run_bench_serve(
    config: BenchServeConfig | None = None,
) -> BenchServeReport:
    """Run the serial-vs-concurrent serving benchmark."""
    config = config or BenchServeConfig()
    if config.metasearcher is None:
        context, metasearcher = build_trained_testbed(
            scale=config.scale,
            seed=config.seed,
            n_train=config.n_train,
            n_test=config.n_test,
            batch_size=config.batch_size,
            train_queries_cap=config.train_queries_cap,
            context=config.context,
        )
    else:
        metasearcher = config.metasearcher
        context = config.context
        if context is None:
            context = build_paper_context(
                PaperSetupConfig(
                    scale=config.scale,
                    seed=config.seed,
                    n_train=config.n_train,
                    n_test=config.n_test,
                )
            )
        if not metasearcher.is_trained:
            cap = config.train_queries_cap
            train = context.train_queries if cap is None else (
                context.train_queries[:cap]
            )
            metasearcher.train(train)
    stream = _build_stream(context.test_queries, config)

    with _service(metasearcher, config, workers=1) as serial_service:
        serial_answers, serial_s = _replay(serial_service, stream, config)
    with _service(
        metasearcher, config, workers=config.workers
    ) as concurrent_service:
        concurrent_answers, concurrent_s = _replay(
            concurrent_service, stream, config
        )
        metrics = concurrent_service.snapshot()

    serial_selections = [answer.selected for answer in serial_answers]
    concurrent_selections = [
        answer.selected for answer in concurrent_answers
    ]
    return BenchServeReport(
        databases=len(context.mediator),
        queries=config.queries,
        unique_queries=min(
            config.unique_queries, len(context.test_queries)
        ),
        workers=config.workers,
        batch_size=config.batch_size,
        serial_s=serial_s,
        concurrent_s=concurrent_s,
        identical_selections=(
            serial_selections == concurrent_selections
        ),
        serial_selections=serial_selections,
        concurrent_selections=concurrent_selections,
        metrics=metrics,
    )


def _stage_summary(metrics: dict, name: str) -> str | None:
    """One-line median/p95 of a per-stage wall-clock histogram."""
    histogram = metrics.get("histograms", {}).get(name)
    if not histogram or not histogram.get("count"):
        return None
    window = histogram.get("window", {})
    p50, p95 = window.get("p50"), window.get("p95")
    if p50 is None or p95 is None:
        return None
    return f"{name:<21}: {p50:.2f} ms median ({p95:.2f} ms p95)"


def format_bench_serve(report: BenchServeReport) -> str:
    """Human-readable benchmark summary (metrics stay JSON)."""
    lines = [
        f"databases            : {report.databases}",
        f"queries              : {report.queries} "
        f"({report.unique_queries} unique)",
        f"batch size           : {report.batch_size}",
        f"serial (1 worker)    : {report.serial_s:.2f} s",
        f"concurrent ({report.workers:>2} wkrs) : "
        f"{report.concurrent_s:.2f} s",
        f"speedup              : {report.speedup:.2f}x",
        f"identical selections : {report.identical_selections}",
    ]
    for stage in ("stage_analyze_ms", "stage_apro_ms"):
        line = _stage_summary(report.metrics, stage)
        if line is not None:
            lines.append(line)
    lines += [
        "",
        "metrics:",
        json.dumps(report.metrics, indent=2, sort_keys=True),
    ]
    return "\n".join(lines)


@dataclass(frozen=True)
class BenchTrainConfig:
    """Knobs of the training benchmark.

    Defaults demonstrate the PR's target: >= 3x wall-clock speedup at 8
    workers over 20 ms injected probe latency, with a byte-identical
    trained model.
    """

    scale: float = 0.05
    seed: int = 2004
    n_train: int = 120
    n_test: int = 10
    train_queries: int = 40
    workers: int = 8
    samples_per_type: int | None = 20
    mean_latency_ms: float = 20.0
    latency_jitter: float = 0.5
    error_rate: float = 0.0
    timeout_ms: float = 100.0
    max_retries: int = 2
    backoff_base_ms: float = 5.0
    context: object | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.train_queries < 1:
            raise ConfigurationError("train_queries must be >= 1")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")


@dataclass(frozen=True)
class BenchTrainReport:
    """What the training benchmark measured."""

    databases: int
    train_queries: int
    workers: int
    serial_s: float
    parallel_s: float
    identical_state: bool
    serial_probes: int
    parallel_probes: int
    metrics: dict[str, object]

    @property
    def speedup(self) -> float:
        """Serial wall-clock over parallel wall-clock."""
        if self.parallel_s <= 0:
            return float("inf")
        return self.serial_s / self.parallel_s


def _train_once(
    context, config: BenchTrainConfig, workers: int
) -> tuple[dict, float, dict[str, object]]:
    summaries = {
        db.name: ExactSummaryBuilder().build(db) for db in context.mediator
    }
    injector = FaultInjector(
        seed=config.seed,
        mean_latency_s=config.mean_latency_ms / 1000.0,
        latency_jitter=config.latency_jitter,
        error_rate=config.error_rate,
    )
    policy = RetryPolicy(
        timeout_s=config.timeout_ms / 1000.0,
        max_retries=config.max_retries,
        backoff_base_s=config.backoff_base_ms / 1000.0,
    )
    with ParallelEDTrainer(
        context.mediator,
        summaries,
        TermIndependenceEstimator(),
        definition=context.config.definition,
        samples_per_type=config.samples_per_type,
        max_workers=workers,
        policy=policy,
        injector=injector,
    ) as trainer:
        queries = context.train_queries[: config.train_queries]
        started = time.perf_counter()
        model = trainer.train(queries)
        elapsed = time.perf_counter() - started
        snapshot = trainer.metrics.snapshot()
    return model.state_dict(), elapsed, snapshot


def run_bench_train(
    config: BenchTrainConfig | None = None,
) -> BenchTrainReport:
    """Run the serial-vs-parallel ED-training benchmark."""
    config = config or BenchTrainConfig()
    context = config.context
    if context is None:
        context = build_paper_context(
            PaperSetupConfig(
                scale=config.scale,
                seed=config.seed,
                n_train=config.n_train,
                n_test=config.n_test,
            )
        )
    serial_state, serial_s, serial_metrics = _train_once(
        context, config, workers=1
    )
    parallel_state, parallel_s, parallel_metrics = _train_once(
        context, config, workers=config.workers
    )
    return BenchTrainReport(
        databases=len(context.mediator),
        train_queries=min(
            config.train_queries, len(context.train_queries)
        ),
        workers=config.workers,
        serial_s=serial_s,
        parallel_s=parallel_s,
        identical_state=(
            json.dumps(serial_state, sort_keys=True)
            == json.dumps(parallel_state, sort_keys=True)
        ),
        serial_probes=int(
            serial_metrics["counters"]["probes_issued"]
        ),
        parallel_probes=int(
            parallel_metrics["counters"]["probes_issued"]
        ),
        metrics=parallel_metrics,
    )


def format_bench_train(report: BenchTrainReport) -> str:
    """Human-readable training-benchmark summary (metrics stay JSON)."""
    lines = [
        f"databases            : {report.databases}",
        f"training queries     : {report.train_queries}",
        f"serial (1 worker)    : {report.serial_s:.2f} s "
        f"({report.serial_probes} probes)",
        f"parallel ({report.workers:>2} wkrs)   : "
        f"{report.parallel_s:.2f} s ({report.parallel_probes} probes)",
        f"speedup              : {report.speedup:.2f}x",
        f"identical state      : {report.identical_state}",
        "",
        "metrics:",
        json.dumps(report.metrics, indent=2, sort_keys=True),
    ]
    return "\n".join(lines)
