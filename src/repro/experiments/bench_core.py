"""``repro-metasearch bench-core``: timings of the per-query hot path.

Measures the core operations a deployment pays for on every uncached
query — RD construction, ``best_set`` for k=1/k=3, ``marginals``, a
full greedy usefulness sweep, and an end-to-end APro batch over the
first ``apro_queries`` test queries — on the paper testbed, and writes
the result as ``BENCH_core.json`` so the perf trajectory is tracked
in-repo (see docs/PERFORMANCE.md).

The two stages the optimization work targets (usefulness sweep, APro
run) are measured as **three variants**:

* ``baseline`` — the pre-incremental-rework tree. For k = 1 this is
  :class:`_ReferenceSweep`, a self-contained reimplementation of the
  original algorithm (rebuild the rank structure per observation, copy
  the outrank matrix and run one full Poisson-binomial DP per
  hypothetical outcome). The in-tree legacy flags
  (``APro(incremental=False)`` / ``GreedyUsefulnessPolicy(batched=False)``)
  are *not* used for k = 1 baseline timing because their ``best_set``
  calls already ride the leave-one-out caches, which understates the
  pre-change cost. For k > 1 the legacy flags are used (the reference
  implements only the k = 1 selection rule).
* ``optimized`` — the incremental/batched algorithm on the ``python``
  oracle backend: the leave-one-out rework without the tensor kernels.
  This is the variant the v1 reports called "optimized", kept so the
  committed perf trajectory stays comparable across schema versions.
* ``backend`` — the same algorithm on the ``numpy`` tensor backend
  (the process default unless ``REPRO_BACKEND`` says otherwise).

Variant repeats are **interleaved** (baseline, optimized, backend,
baseline, …) rather than run as back-to-back blocks, so no variant
enjoys warmer CPU caches / branch predictors than the others; the
round-robin order is recorded in the scenario's ``repeat_order``.
Speedups are medians of *per-round* ratios — the two samples of a
round saw the same machine state, so frequency drift and noisy
neighbours cancel instead of skewing a ratio of independent medians.

The agreement block doubles as an end-to-end correctness check — the
incremental path must match a from-scratch rebuild, and the tensor
backend must match the ``python`` oracle, on probe orders, answer sets,
and certainties to 1e-9 — and :func:`check_bench_core` turns a
committed report into a CI perf-regression gate: agreement violations
are hard failures everywhere, while timing regressions are hard
failures only when the report and the reference were produced on the
same host with the same benchmark configuration (and soft warnings
otherwise, since absolute timings do not transfer across machines).

Timing scenarios mirror ``benchmarks/bench_micro_core.py`` (the
pytest-benchmark variant of the same hot path) without requiring
pytest.
"""

from __future__ import annotations

import hashlib
import os
import platform
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.backend import default_backend_name
from repro.core.policies import GreedyUsefulnessPolicy
from repro.core.probing import APro
from repro.core.topk import CorrectnessMetric, TopKComputer
from repro.exceptions import ConfigurationError, ReproError
from repro.experiments.harness import train_pipeline
from repro.experiments.setup import PaperSetupConfig, build_paper_context

__all__ = [
    "BENCH_CORE_SCHEMA",
    "BENCH_CORE_SCHEMA_V1",
    "BenchCoreConfig",
    "run_bench_core",
    "format_bench_core",
    "validate_bench_core",
    "read_bench_core",
    "check_bench_core",
]

#: Schema tag embedded in (and asserted over) ``BENCH_core.json``.
BENCH_CORE_SCHEMA = "bench-core/v2"

#: The previous schema; still accepted as a *reference* by the check
#: gate so a v2 run can be compared against a committed v1 file.
BENCH_CORE_SCHEMA_V1 = "bench-core/v1"

#: Scenario names every report must contain.
_SHARED_SCENARIOS = ("rd_build", "best_set_k1", "best_set_k3", "marginals_k3")
_COMPARED_SCENARIOS = ("usefulness_sweep", "apro_run")

#: Timed variants of each compared scenario, in round-robin order.
_VARIANTS = ("baseline", "optimized", "backend")

#: Config keys that must match for timings to be comparable at all.
_COMPARABLE_CONFIG_KEYS = (
    "scale",
    "seed",
    "n_train",
    "n_test",
    "k",
    "threshold",
    "apro_queries",
    "databases",
)


@dataclass(frozen=True)
class BenchCoreConfig:
    """Knobs of the core benchmark (defaults = the paper testbed at 0.1)."""

    scale: float = 0.1
    seed: int = 2004
    n_train: int = 300
    n_test: int = 40
    repeats: int = 20
    k: int = 1
    threshold: float = 0.8
    apro_queries: int = 10
    context: object | None = field(default=None, compare=False)
    pipeline: object | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        if self.apro_queries < 1:
            raise ConfigurationError("apro_queries must be >= 1")
        if not 0.0 <= self.threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")


class _ReferenceSweep:
    """The pre-change belief machinery, ported verbatim for timing.

    A faithful port of the original :class:`TopKComputer` internals as
    they stood before the incremental/batched rework — the same
    ``_build_atoms`` (both outrank matrices, per-database cumulative
    structures, eager atom triples), the same ``_effective_rows`` (full
    copies of *both* matrices per hypothetical outcome, single-slot
    memo), the same full (m × k) Poisson-binomial DP per ``marginals``
    call, and the same k = 1 ``best_set`` selection rule. Usefulness of
    a database therefore costs one matrix copy plus one full DP per
    support atom — the work profile the leave-one-out batch replaced.
    Baseline timings use this class so committed speedups are measured
    against the pre-change tree, not against legacy flags that already
    ride the new caches. k = 1 only (the k > 1 absolute-metric search is
    not ported).
    """

    _NEGLIGIBLE = 1e-9

    def __init__(self, rds, k: int) -> None:
        if k != 1:
            raise ConfigurationError("reference sweep implements k = 1 only")
        self._rds = list(rds)
        self._n = len(self._rds)
        self._k = k
        self._override_memo = None
        self._marginals_memo: dict = {}
        self._best_set_memo: dict = {}
        values = np.concatenate([rd.values for rd in self._rds])
        probs = np.concatenate([rd.probs for rd in self._rds])
        dbs = np.concatenate(
            [np.full(rd.support_size, i) for i, rd in enumerate(self._rds)]
        )
        m = len(values)
        bounds = np.concatenate(
            ([0], np.cumsum([rd.support_size for rd in self._rds]))
        )
        self._db_atom_start = bounds[:-1]
        self._db_atom_stop = bounds[1:]
        order = np.lexsort((-dbs, values))
        ranks = np.empty(m, dtype=np.int64)
        ranks[order] = np.arange(m)
        self._atom_probs = probs
        self._atom_dbs = dbs
        self._atom_ranks = ranks
        self._num_atoms = m
        self._db_sorted_ranks = []
        self._db_cumprobs = []
        for i in range(self._n):
            mask = dbs == i
            db_ranks = ranks[mask]
            db_probs = probs[mask]
            sort = np.argsort(db_ranks)
            self._db_sorted_ranks.append(db_ranks[sort])
            self._db_cumprobs.append(
                np.concatenate(([0.0], np.cumsum(db_probs[sort])))
            )
        greater = np.empty((self._n, m), dtype=np.float64)
        less = np.empty((self._n, m), dtype=np.float64)
        for j in range(self._n):
            sorted_ranks = self._db_sorted_ranks[j]
            cum = self._db_cumprobs[j]
            right = np.searchsorted(sorted_ranks, ranks, side="right")
            left = np.searchsorted(sorted_ranks, ranks, side="left")
            greater[j] = cum[-1] - cum[right]
            less[j] = cum[left]
        greater_masked = greater.copy()
        greater_masked[dbs, np.arange(m)] = 0.0
        self._greater = greater_masked
        self._less = less
        self._db_atom_triples = [
            [
                (int(t), float(values[t]), float(probs[t]))
                for t in range(int(self._db_atom_start[i]),
                               int(self._db_atom_stop[i]))
            ]
            for i in range(self._n)
        ]

    def _effective_rows(self, override):
        if override is None:
            return self._greater, self._less, self._atom_probs
        i, t0 = override
        if self._override_memo is not None:
            key, rows = self._override_memo
            if key == (i, t0):
                return rows
        rank0 = self._atom_ranks[t0]
        greater = self._greater.copy()
        less = self._less.copy()
        row = (rank0 > self._atom_ranks).astype(np.float64)
        row[self._db_atom_start[i] : self._db_atom_stop[i]] = 0.0
        greater[i] = row
        less[i] = (rank0 < self._atom_ranks).astype(np.float64)
        probs = self._atom_probs.copy()
        probs[self._db_atom_start[i] : self._db_atom_stop[i]] = 0.0
        probs[t0] = 1.0
        self._override_memo = ((i, t0), (greater, less, probs))
        return greater, less, probs

    def marginals(self, override=None) -> np.ndarray:
        greater, _, probs = self._effective_rows(override)
        m = self._num_atoms
        dp = np.zeros((m, self._k), dtype=np.float64)
        dp[:, 0] = 1.0
        for j in range(self._n):
            p = greater[j][:, None]
            keep = dp * (1.0 - p)
            keep[:, 1:] += dp[:, :-1] * p
            dp = keep
        membership = dp.sum(axis=1)
        weighted = probs * membership
        marginals = np.zeros(self._n)
        np.add.at(marginals, self._atom_dbs, weighted)
        result = np.clip(marginals, 0.0, 1.0)
        self._marginals_memo[override] = result
        return result.copy()

    def best_set(self, override=None):
        cached = self._best_set_memo.get(override)
        if cached is not None:
            return cached
        marginals = self.marginals(override)
        ranked = sorted(
            range(self._n), key=lambda i: (-marginals[i], i)
        )
        chosen = tuple(sorted(ranked[: self._k]))
        result = chosen, min(
            1.0, float(np.mean([marginals[i] for i in chosen]))
        )
        self._best_set_memo[override] = result
        return result

    def usefulness(self, database: int) -> float:
        total = 0.0
        skipped = 0.0
        for atom_index, _value, prob in self._db_atom_triples[database]:
            if prob < self._NEGLIGIBLE:
                skipped += prob
                continue
            _best, score = self.best_set(override=(database, atom_index))
            total += prob * score
        return total + skipped


class _ReferencePolicy:
    """Greedy choose() on top of :class:`_ReferenceSweep` (k = 1)."""

    def choose(self, computer, candidates, metric, threshold) -> int:
        rds = [computer.rd(i) for i in range(computer.num_databases)]
        sweep = _ReferenceSweep(rds, computer.k)
        best_db = candidates[0]
        best_usefulness = -1.0
        for database in candidates:
            usefulness = sweep.usefulness(database)
            if usefulness > best_usefulness + 1e-12:
                best_db, best_usefulness = database, usefulness
        return best_db


def _summarize(samples: list[float]) -> dict[str, float]:
    ordered = sorted(samples)
    p95_index = min(len(ordered), max(1, round(0.95 * len(ordered)))) - 1
    return {
        "median_ms": round(statistics.median(ordered), 6),
        "p95_ms": round(ordered[p95_index], 6),
        "repeats": len(samples),
    }


def _timeit(fn: Callable[[], object], repeats: int) -> dict[str, float]:
    """Median/p95 wall-clock of *fn* over *repeats* runs, in milliseconds."""
    samples: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - started) * 1000.0)
    return _summarize(samples)


def _timeit_interleaved(
    fns: dict[str, Callable[[], object]], repeats: int
) -> dict[str, dict[str, float]]:
    """Time several variants round-robin instead of back-to-back.

    Block timing hands later blocks caches and branch predictors warmed
    by the earlier ones; interleaving gives every variant the same
    context on every round, so the medians are comparable. Insertion
    order of *fns* is the round-robin order.
    """
    names = list(fns)
    samples: dict[str, list[float]] = {name: [] for name in names}
    for _ in range(repeats):
        for name in names:
            started = time.perf_counter()
            fns[name]()
            samples[name].append((time.perf_counter() - started) * 1000.0)
    return {name: _summarize(samples[name]) for name in names}, samples


def _paired_speedup(
    samples: dict[str, list[float]], baseline: str, other: str
) -> float:
    """Median of per-round baseline/other ratios.

    Rounds are interleaved, so the two samples of one round saw the
    same machine state; their ratio cancels frequency drift and noisy
    neighbours that a ratio of independent medians would conflate with
    the code's actual speedup.
    """
    ratios = [
        b / o if o > 0 else float("inf")
        for b, o in zip(samples[baseline], samples[other])
    ]
    return round(statistics.median(ratios), 3)


def _blas_info() -> str:
    """Best-effort name of the BLAS numpy was built against."""
    try:
        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "unknown")
        version = blas.get("version") or ""
        return f"{name} {version}".strip()
    except Exception:  # pragma: no cover - numpy build variations
        return "unknown"


def _collect_environment() -> dict[str, object]:
    """Hardware/software context a perf number is only meaningful in."""
    host_key = "|".join(
        (platform.node(), platform.machine(), platform.processor())
    )
    return {
        "numpy": np.__version__,
        "blas": _blas_info(),
        "backend": default_backend_name(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 0,
        "host_fingerprint": hashlib.sha256(
            host_key.encode("utf-8")
        ).hexdigest()[:16],
    }


def _trajectory_agreement(
    fast: APro, slow: APro, queries, config: BenchCoreConfig
) -> tuple[bool, bool, float]:
    """(identical probe orders, identical answer sets, max certainty Δ)."""
    identical_probe_orders = True
    identical_answer_sets = True
    max_certainty_delta = 0.0
    for query in queries:
        a = fast.run(query, k=config.k, threshold=config.threshold)
        b = slow.run(query, k=config.k, threshold=config.threshold)
        if [(r.index, r.observed) for r in a.records] != [
            (r.index, r.observed) for r in b.records
        ]:
            identical_probe_orders = False
        if [p.names for p in a.trajectory] != [
            p.names for p in b.trajectory
        ]:
            identical_answer_sets = False
        for pa, pb in zip(a.trajectory, b.trajectory):
            max_certainty_delta = max(
                max_certainty_delta,
                abs(pa.expected_correctness - pb.expected_correctness),
            )
    return identical_probe_orders, identical_answer_sets, max_certainty_delta


def _agreement(
    selector, queries, config: BenchCoreConfig
) -> dict[str, object]:
    """Incremental-vs-rebuild and backend-vs-oracle trajectory checks."""
    optimized = APro(selector, policy=GreedyUsefulnessPolicy())
    rebuild = APro(
        selector,
        policy=GreedyUsefulnessPolicy(batched=False),
        incremental=False,
    )
    inc_orders, inc_sets, inc_delta = _trajectory_agreement(
        optimized, rebuild, queries, config
    )
    tensor = APro(selector, backend="numpy")
    oracle = APro(selector, backend="python")
    bk_orders, bk_sets, bk_delta = _trajectory_agreement(
        tensor, oracle, queries, config
    )
    return {
        "queries": len(queries),
        "identical_probe_orders": inc_orders,
        "identical_answer_sets": inc_sets,
        "max_certainty_delta": float(inc_delta),
        "incremental_matches_rebuild": (
            inc_orders and inc_sets and inc_delta <= 1e-9
        ),
        "backend_identical_probe_orders": bk_orders,
        "backend_identical_answer_sets": bk_sets,
        "backend_max_certainty_delta": float(bk_delta),
        "backend_matches_python": (
            bk_orders and bk_sets and bk_delta <= 1e-9
        ),
    }


def run_bench_core(config: BenchCoreConfig | None = None) -> dict[str, object]:
    """Run every scenario and return the JSON-able report."""
    config = config or BenchCoreConfig()
    context = config.context
    if context is None:
        context = build_paper_context(
            PaperSetupConfig(
                scale=config.scale,
                seed=config.seed,
                n_train=config.n_train,
                n_test=config.n_test,
            )
        )
    pipeline = config.pipeline
    if pipeline is None:
        pipeline = train_pipeline(context)
    selector = pipeline.rd_selector
    if not context.test_queries:
        raise ConfigurationError("testbed produced no test queries")
    sample_query = context.test_queries[0]
    apro_queries = context.test_queries[: config.apro_queries]
    rds = selector.build_rds(sample_query)
    n = len(rds)
    repeats = config.repeats

    scenarios: dict[str, object] = {}
    scenarios["rd_build"] = _timeit(
        lambda: selector.build_rds(sample_query), repeats
    )
    scenarios["best_set_k1"] = _timeit(
        lambda: TopKComputer(rds, 1).best_set(CorrectnessMetric.ABSOLUTE),
        repeats,
    )
    scenarios["best_set_k3"] = _timeit(
        lambda: TopKComputer(rds, min(3, n)).best_set(
            CorrectnessMetric.ABSOLUTE
        ),
        repeats,
    )
    scenarios["marginals_k3"] = _timeit(
        lambda: TopKComputer(rds, min(3, n)).marginals(), repeats
    )

    def sweep_on(backend: str) -> None:
        # One fresh computer per sweep: the usefulness of every
        # database, exactly what one APro policy round evaluates.
        computer = TopKComputer(rds, config.k, backend=backend)
        policy = GreedyUsefulnessPolicy()
        for database in range(n):
            policy.usefulness(computer, database, CorrectnessMetric.ABSOLUTE)

    if config.k == 1:

        def sweep_slow() -> None:
            reference = _ReferenceSweep(rds, config.k)
            for database in range(n):
                reference.usefulness(database)

        baseline_policy = _ReferencePolicy()
    else:

        def sweep_slow() -> None:
            computer = TopKComputer(rds, config.k, backend="python")
            policy = GreedyUsefulnessPolicy(batched=False)
            for database in range(n):
                policy.usefulness(computer, database, CorrectnessMetric.ABSOLUTE)

        baseline_policy = GreedyUsefulnessPolicy(batched=False)

    sweep_times, sweep_samples = _timeit_interleaved(
        {
            "baseline": sweep_slow,
            "optimized": lambda: sweep_on("python"),
            "backend": lambda: sweep_on("numpy"),
        },
        repeats,
    )
    scenarios["usefulness_sweep"] = {
        **sweep_times,
        "speedup_median": _paired_speedup(
            sweep_samples, "baseline", "optimized"
        ),
        "speedup_backend_median": _paired_speedup(
            sweep_samples, "baseline", "backend"
        ),
        "repeat_order": list(_VARIANTS),
    }

    apro_runners = {
        "baseline": APro(selector, policy=baseline_policy, incremental=False),
        "optimized": APro(selector, backend="python"),
        "backend": APro(selector, backend="numpy"),
    }

    def apro_batch(runner: APro) -> None:
        # A batch over the first ``apro_queries`` test queries, not a
        # single cherry-picked one: per-query round counts vary a lot
        # (some queries satisfy the threshold from the prior, others
        # probe half the mediator), so a single query's fixed costs
        # would dominate whichever way it leans. The batch is the
        # workload a deployment actually pays for.
        for query in apro_queries:
            runner.run(query, k=config.k, threshold=config.threshold)

    apro_repeats = max(1, repeats // 2)
    apro_times, apro_samples = _timeit_interleaved(
        {
            name: (lambda runner=runner: apro_batch(runner))
            for name, runner in apro_runners.items()
        },
        apro_repeats,
    )
    scenarios["apro_run"] = {
        **apro_times,
        "speedup_median": _paired_speedup(
            apro_samples, "baseline", "optimized"
        ),
        "speedup_backend_median": _paired_speedup(
            apro_samples, "baseline", "backend"
        ),
        "repeat_order": list(_VARIANTS),
    }

    report: dict[str, object] = {
        "schema": BENCH_CORE_SCHEMA,
        "config": {
            "scale": config.scale,
            "seed": config.seed,
            "n_train": config.n_train,
            "n_test": config.n_test,
            "repeats": repeats,
            "k": config.k,
            "threshold": config.threshold,
            "apro_queries": config.apro_queries,
            "databases": n,
        },
        "environment": _collect_environment(),
        "scenarios": scenarios,
        "agreement": _agreement(selector, apro_queries, config),
    }
    return report


def validate_bench_core(report: dict[str, object]) -> None:
    """Assert the report matches the bench-core/v2 schema.

    Raises :class:`~repro.exceptions.ReproError` on any violation —
    the CI smoke step runs this plus the agreement flags.
    """
    if report.get("schema") != BENCH_CORE_SCHEMA:
        raise ReproError(
            f"unexpected schema {report.get('schema')!r}, "
            f"wanted {BENCH_CORE_SCHEMA!r}"
        )
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, dict):
        raise ReproError("report has no scenarios mapping")
    for name in _SHARED_SCENARIOS:
        entry = scenarios.get(name)
        if not isinstance(entry, dict) or not {
            "median_ms",
            "p95_ms",
            "repeats",
        } <= set(entry):
            raise ReproError(f"scenario {name!r} malformed: {entry!r}")
    for name in _COMPARED_SCENARIOS:
        entry = scenarios.get(name)
        if not isinstance(entry, dict) or not (
            set(_VARIANTS)
            | {"speedup_median", "speedup_backend_median", "repeat_order"}
        ) <= set(entry):
            raise ReproError(f"scenario {name!r} malformed: {entry!r}")
    agreement = report.get("agreement")
    if not isinstance(agreement, dict) or not {
        "incremental_matches_rebuild",
        "backend_matches_python",
    } <= set(agreement):
        raise ReproError("report has no complete agreement section")
    environment = report.get("environment")
    if not isinstance(environment, dict) or not {
        "numpy",
        "blas",
        "backend",
        "host_fingerprint",
    } <= set(environment):
        raise ReproError("report has no complete environment section")


def read_bench_core(path: str) -> dict[str, object]:
    """Load a committed report, accepting both v1 and v2 schemas.

    v1 reports (no environment block, no ``backend`` variant) are
    returned as-is; :func:`check_bench_core` treats their missing
    pieces as "unknown hardware" and compares only what both schemas
    share. Raises :class:`~repro.exceptions.ReproError` when the file
    is unreadable or carries an unknown schema tag.
    """
    import json

    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read bench report {path!r}: {exc}") from exc
    if not isinstance(report, dict):
        raise ReproError(f"bench report {path!r} is not a JSON object")
    schema = report.get("schema")
    if schema not in (BENCH_CORE_SCHEMA, BENCH_CORE_SCHEMA_V1):
        raise ReproError(
            f"bench report {path!r} has unsupported schema {schema!r}"
        )
    return report


def _median_of(entry: object) -> float | None:
    if isinstance(entry, dict) and isinstance(
        entry.get("median_ms"), (int, float)
    ):
        return float(entry["median_ms"])
    return None


def check_bench_core(
    report: dict[str, object],
    reference: dict[str, object] | None,
    tolerance: float = 1.5,
) -> tuple[list[str], list[str]]:
    """Diff a fresh report against a committed reference.

    Returns ``(failures, warnings)``. Failures (CI exits non-zero):

    * an agreement flag in *report* is false — the incremental path or
      the array backend diverged from its oracle, which no amount of
      hardware variance excuses;
    * a scenario median regressed beyond ``tolerance ×`` the reference
      *and* the reference was produced on the same host with the same
      benchmark configuration (fingerprint + config keys match);
    * a paired speedup ratio fell below ``reference / tolerance`` with
      the same benchmark configuration (any host). The per-round ratios
      divide out machine state, so unlike absolute milliseconds they do
      transfer — a drop means the optimized path got *relatively*
      slower, which is an algorithmic regression.

    On different or unknown hardware the absolute-time regressions come
    back as warnings instead: milliseconds do not transfer between
    machines, so they gate nothing but stay visible in the CI log.
    """
    if tolerance <= 1.0:
        raise ConfigurationError("tolerance must be > 1.0")
    failures: list[str] = []
    warnings: list[str] = []

    agreement = report.get("agreement")
    if not isinstance(agreement, dict):
        agreement = {}
    for flag in ("incremental_matches_rebuild", "backend_matches_python"):
        if not agreement.get(flag, False):
            failures.append(f"agreement flag {flag} is false")

    if reference is None:
        return failures, warnings

    report_env = report.get("environment")
    ref_env = reference.get("environment")
    same_host = bool(
        isinstance(report_env, dict)
        and isinstance(ref_env, dict)
        and report_env.get("host_fingerprint")
        and report_env.get("host_fingerprint")
        == ref_env.get("host_fingerprint")
    )
    report_config = report.get("config") or {}
    ref_config = reference.get("config") or {}
    same_config = all(
        report_config.get(key) == ref_config.get(key)
        for key in _COMPARABLE_CONFIG_KEYS
    )
    gate_perf = same_host and same_config

    def compare(label: str, ref_entry: object, new_entry: object) -> None:
        ref_median = _median_of(ref_entry)
        new_median = _median_of(new_entry)
        if ref_median is None or new_median is None or ref_median <= 0:
            return
        if new_median > tolerance * ref_median:
            message = (
                f"{label}: {new_median:.3f} ms vs reference "
                f"{ref_median:.3f} ms (> {tolerance:.2f}x)"
            )
            (failures if gate_perf else warnings).append(message)

    def compare_ratio(label: str, ref_entry: dict, new_entry: dict, key: str) -> None:
        ref_ratio = ref_entry.get(key)
        new_ratio = new_entry.get(key)
        if not isinstance(ref_ratio, (int, float)) or not isinstance(
            new_ratio, (int, float)
        ):
            return
        if float(new_ratio) < float(ref_ratio) / tolerance:
            message = (
                f"{label}/{key}: {float(new_ratio):.2f}x vs reference "
                f"{float(ref_ratio):.2f}x (< 1/{tolerance:.2f})"
            )
            (failures if same_config else warnings).append(message)

    ref_scenarios = reference.get("scenarios")
    new_scenarios = report.get("scenarios")
    if isinstance(ref_scenarios, dict) and isinstance(new_scenarios, dict):
        for name in _SHARED_SCENARIOS:
            compare(name, ref_scenarios.get(name), new_scenarios.get(name))
        for name in _COMPARED_SCENARIOS:
            ref_entry = ref_scenarios.get(name)
            new_entry = new_scenarios.get(name)
            if not isinstance(ref_entry, dict) or not isinstance(
                new_entry, dict
            ):
                continue
            for variant in _VARIANTS:
                compare(
                    f"{name}/{variant}",
                    ref_entry.get(variant),
                    new_entry.get(variant),
                )
            for key in ("speedup_median", "speedup_backend_median"):
                compare_ratio(name, ref_entry, new_entry, key)
    return failures, warnings


def format_bench_core(report: dict[str, object]) -> str:
    """Human-readable summary of a bench-core report."""
    scenarios = report["scenarios"]
    agreement = report["agreement"]
    environment = report.get("environment", {})
    lines = [
        f"databases            : {report['config']['databases']}",
        f"repeats              : {report['config']['repeats']}",
        (
            "environment          : "
            f"numpy {environment.get('numpy', '?')} "
            f"({environment.get('blas', '?')}), "
            f"backend {environment.get('backend', '?')}"
        ),
    ]
    for name in _SHARED_SCENARIOS:
        entry = scenarios[name]
        lines.append(
            f"{name:<21}: {entry['median_ms']:.3f} ms median "
            f"({entry['p95_ms']:.3f} ms p95)"
        )
    for name in _COMPARED_SCENARIOS:
        entry = scenarios[name]
        lines.append(
            f"{name:<21}: {entry['backend']['median_ms']:.3f} ms median "
            f"(python {entry['optimized']['median_ms']:.3f} ms, "
            f"baseline {entry['baseline']['median_ms']:.3f} ms, "
            f"{entry['speedup_backend_median']:.2f}x over baseline)"
        )
    lines.append(
        "incremental==rebuild : "
        f"{agreement['incremental_matches_rebuild']} "
        f"(max certainty delta {agreement['max_certainty_delta']:.2e} "
        f"over {agreement['queries']} queries)"
    )
    lines.append(
        "backend==python      : "
        f"{agreement['backend_matches_python']} "
        f"(max certainty delta "
        f"{agreement['backend_max_certainty_delta']:.2e})"
    )
    return "\n".join(lines)
