"""Targeted tests for internal helpers and less-travelled branches."""

import numpy as np
import pytest

from repro.core.query_types import QueryType
from repro.core.training import ErrorModel
from repro.exceptions import DistributionError, TrainingError
from repro.experiments.sampling_size import sampling_size_goodness
from repro.hiddenweb.mediator import Mediator
from repro.hiddenweb.database import HiddenWebDatabase
from repro.stats.distribution import DiscreteDistribution
from repro.text.porter import PorterStemmer
from repro.text.analyzer import Analyzer
from repro.types import Document


class TestPorterInternals:
    def test_measure(self):
        # m counts VC sequences: tr|ee -> m=0, tr|oubl|e -> m=1, etc.
        assert PorterStemmer._measure("tr") == 0
        assert PorterStemmer._measure("ee") == 0
        assert PorterStemmer._measure("tree") == 0
        assert PorterStemmer._measure("trouble") == 1
        assert PorterStemmer._measure("oats") == 1
        assert PorterStemmer._measure("oaten") == 2  # Porter 1980 example
        assert PorterStemmer._measure("private") == 2

    def test_contains_vowel(self):
        assert PorterStemmer._contains_vowel("crab")
        assert not PorterStemmer._contains_vowel("crt")
        # 'y' after a consonant counts as a vowel position.
        assert PorterStemmer._contains_vowel("cry")

    def test_double_consonant(self):
        assert PorterStemmer._ends_double_consonant("hopp")
        assert not PorterStemmer._ends_double_consonant("hoop")
        assert not PorterStemmer._ends_double_consonant("x")

    def test_cvc(self):
        assert PorterStemmer._ends_cvc("hop")
        assert not PorterStemmer._ends_cvc("how")  # ends w
        assert not PorterStemmer._ends_cvc("hoop")
        assert not PorterStemmer._ends_cvc("ax")

    def test_consonant_y_rules(self):
        # Leading y is a consonant; y after a vowel is a consonant.
        assert PorterStemmer._is_consonant("yes", 0)
        assert PorterStemmer._is_consonant("boy", 2)
        # y after a consonant acts as a vowel.
        assert not PorterStemmer._is_consonant("cry", 2)


class TestDistributionConstructorValidation:
    def test_direct_constructor_checks_order(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution(
                np.array([2.0, 1.0]), np.array([0.5, 0.5])
            )

    def test_direct_constructor_checks_normalization(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution(
                np.array([1.0, 2.0]), np.array([0.5, 0.9])
            )

    def test_direct_constructor_checks_shapes(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution(np.array([1.0]), np.array([0.5, 0.5]))

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution(np.array([]), np.array([]))


class TestErrorModelExactAccessor:
    def test_exact_returns_none_for_unknown(self):
        model = ErrorModel()
        assert model.exact("db", QueryType(2, 0)) is None

    def test_exact_ignores_min_samples(self):
        model = ErrorModel(min_samples=100)
        model.observe("db", QueryType(2, 0), 0.5)
        # lookup refuses (too few samples) but exact() returns the slice.
        assert model.lookup("db", QueryType(2, 0)) is None
        assert model.exact("db", QueryType(2, 0)).sample_count == 1


class TestSamplingSizeGuards:
    def test_insufficient_pool_raises(self, analyzer):
        documents = [Document(i, "cancer study report") for i in range(30)]
        mediator = Mediator(
            [HiddenWebDatabase("only", documents, analyzer)]
        )
        from repro.querylog.generator import QueryTraceGenerator
        from repro.corpus.topics import default_topic_registry
        from repro.corpus.zipf import ZipfVocabulary

        trace = QueryTraceGenerator(
            default_topic_registry(seed=91),
            ZipfVocabulary(200, seed=92),
            analyzer=analyzer,
            seed=93,
        )
        tiny_pool = trace.generate(20)
        with pytest.raises(TrainingError):
            sampling_size_goodness(
                mediator,
                tiny_pool,
                sampling_sizes=(10, 200),  # 200 >> qualifying queries
                repetitions=2,
            )


class TestAnalyzerCacheIsolation:
    def test_separate_instances_separate_caches(self):
        a = Analyzer(stem=True)
        b = Analyzer(stem=False)
        assert a.analyze("running") == ["run"]
        assert b.analyze("running") == ["running"]
        # Re-query after both populated their caches.
        assert a.analyze("running") == ["run"]
        assert b.analyze("running") == ["running"]
