"""Pluggable numeric backends for the probabilistic top-k core.

See :mod:`repro.core.backend.base` for the kernel contract and
:mod:`repro.core.backend.registry` for selection (``REPRO_BACKEND``,
``use_backend``) and the ``register_backend`` hook for compiled engines.
"""

from repro.core.backend.base import ArrayBackend
from repro.core.backend.numpy_backend import NumpyBackend
from repro.core.backend.python_backend import PythonBackend
from repro.core.backend.registry import (
    BACKEND_ENV,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    unregister_backend,
    use_backend,
)

__all__ = [
    "ArrayBackend",
    "BACKEND_ENV",
    "NumpyBackend",
    "PythonBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "use_backend",
]
