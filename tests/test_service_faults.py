"""Tests for deterministic fault injection."""

import pytest

from repro.exceptions import ConfigurationError
from repro.service.faults import FaultInjector


class TestFaultInjector:
    def test_plans_are_deterministic(self):
        a = FaultInjector(seed=7, mean_latency_s=0.05, error_rate=0.3)
        b = FaultInjector(seed=7, mean_latency_s=0.05, error_rate=0.3)
        plans_a = [a.plan("db", i) for i in range(50)]
        plans_b = [b.plan("db", i) for i in range(50)]
        assert plans_a == plans_b

    def test_plans_independent_of_call_order(self):
        injector = FaultInjector(seed=7, mean_latency_s=0.05)
        forward = [injector.plan("db", i) for i in range(10)]
        backward = [injector.plan("db", i) for i in reversed(range(10))]
        assert forward == list(reversed(backward))

    def test_seed_changes_schedule(self):
        a = FaultInjector(seed=1, mean_latency_s=0.05)
        b = FaultInjector(seed=2, mean_latency_s=0.05)
        assert [a.plan("db", i) for i in range(20)] != [
            b.plan("db", i) for i in range(20)
        ]

    def test_databases_get_distinct_schedules(self):
        injector = FaultInjector(seed=7, mean_latency_s=0.05)
        assert [injector.plan("x", i) for i in range(20)] != [
            injector.plan("y", i) for i in range(20)
        ]

    def test_latency_within_jitter_band(self):
        injector = FaultInjector(
            seed=3, mean_latency_s=0.1, latency_jitter=0.5
        )
        for attempt in range(200):
            latency = injector.plan("db", attempt).latency_s
            assert 0.05 <= latency <= 0.15

    def test_zero_latency_by_default(self):
        plan = FaultInjector(seed=1).plan("db", 0)
        assert plan.latency_s == 0.0
        assert plan.healthy

    def test_error_rate_extremes(self):
        always = FaultInjector(seed=1, error_rate=1.0)
        never = FaultInjector(seed=1, error_rate=0.0)
        assert all(always.plan("db", i).fail for i in range(20))
        assert not any(never.plan("db", i).fail for i in range(20))

    def test_blackout_window(self):
        injector = FaultInjector(seed=1, blackouts={"db": (2, 5)})
        flags = [injector.plan("db", i).blackout for i in range(7)]
        assert flags == [False, False, True, True, True, False, False]
        assert not injector.plan("other", 3).blackout

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mean_latency_s": -1.0},
            {"latency_jitter": 1.5},
            {"error_rate": -0.1},
            {"error_rate": 1.1},
            {"blackouts": {"db": (3, 1)}},
            {"blackouts": {"db": (-1, 2)}},
        ],
    )
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultInjector(seed=1, **kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(seed=1).plan("db", -1)
