"""Seedable fault injection for probe traffic.

Real Hidden-Web databases answer after a network round-trip, sometimes
slowly and sometimes not at all. The :class:`FaultInjector` simulates
that behaviour deterministically so resilience machinery can be tested
and benchmarked: per-attempt latency drawn around a configurable mean,
Bernoulli probe failures, and per-database blackout windows.

Determinism is the load-bearing property. Each plan is derived from
``(seed, database, attempt_number)`` alone — not from a shared RNG
stream — so the schedule a database experiences is identical whether
probes run on one thread or sixteen, and identical across runs. That is
what lets the concurrency tests demand bit-identical selections and
metrics for any executor width.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError, ReproError

__all__ = ["InjectedFault", "FaultPlan", "FaultInjector"]


class InjectedFault(ReproError):
    """A simulated probe failure (network error or blackout)."""


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """What one probe attempt will experience."""

    latency_s: float
    fail: bool
    blackout: bool

    @property
    def healthy(self) -> bool:
        """Whether the attempt will return an answer."""
        return not (self.fail or self.blackout)


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic latency / error / blackout schedules per database.

    Parameters
    ----------
    seed:
        Master seed; two injectors with the same seed and configuration
        produce identical schedules.
    mean_latency_s:
        Mean injected probe latency in seconds (0 disables latency).
    latency_jitter:
        Relative half-width of the uniform latency distribution: each
        latency is drawn from ``mean * [1 - j, 1 + j]``. Must lie in
        [0, 1].
    error_rate:
        Per-attempt probability of a simulated network failure.
    blackouts:
        Per-database attempt windows ``{name: (start, stop)}`` during
        which every probe fails (half-open interval over that
        database's attempt numbers, starting at 0). Models a backend
        going dark and coming back.
    """

    seed: int = 0
    mean_latency_s: float = 0.0
    latency_jitter: float = 0.5
    error_rate: float = 0.0
    blackouts: Mapping[str, tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mean_latency_s < 0:
            raise ConfigurationError(
                f"mean_latency_s must be >= 0, got {self.mean_latency_s}"
            )
        if not 0.0 <= self.latency_jitter <= 1.0:
            raise ConfigurationError(
                f"latency_jitter must be in [0, 1], got {self.latency_jitter}"
            )
        if not 0.0 <= self.error_rate <= 1.0:
            raise ConfigurationError(
                f"error_rate must be in [0, 1], got {self.error_rate}"
            )
        for name, window in self.blackouts.items():
            start, stop = window
            if start < 0 or stop < start:
                raise ConfigurationError(
                    f"invalid blackout window {window} for {name!r}"
                )

    def plan(self, database: str, attempt: int) -> FaultPlan:
        """The fault plan for *database*'s attempt number *attempt*.

        A pure function of ``(seed, database, attempt)``: thread
        scheduling and call order cannot change what any attempt
        experiences.
        """
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        # str seeds hash via SHA-512 inside Random — stable across
        # processes, unlike builtin hash() under PYTHONHASHSEED.
        rng = random.Random(f"{self.seed}:{database}:{attempt}")
        latency = 0.0
        if self.mean_latency_s > 0:
            low = 1.0 - self.latency_jitter
            high = 1.0 + self.latency_jitter
            latency = self.mean_latency_s * rng.uniform(low, high)
        fail = self.error_rate > 0 and rng.random() < self.error_rate
        window = self.blackouts.get(database)
        blackout = window is not None and window[0] <= attempt < window[1]
        return FaultPlan(latency_s=latency, fail=fail, blackout=blackout)
