"""`repro-metasearch bench-gateway`: open-loop gateway load generator.

Two phases against a real gateway on an ephemeral port, each designed
to *demonstrate* one front-end mechanism rather than merely exercise
it:

* **coalesce** — the selection cache is disabled and a burst of
  requests drawn from a handful of distinct queries is fired
  concurrently under injected probe latency. Concurrent duplicates
  cannot be answered by any cache (they all arrive before the first
  answer exists); single-flight coalescing is what collapses them, so
  the phase reports a coalesce hit rate > 0 and *fewer backend serve
  calls than requests*.
* **shed** — a gateway with a deliberately tiny admission envelope
  (``max_inflight=1``, short queue) takes an open-loop burst it cannot
  absorb. Excess requests must come back as typed ``overloaded``
  responses carrying ``retry_after_ms`` — not hangs, not dropped
  connections — and the gateway must drain cleanly afterwards with no
  leaked request tasks.

Latencies are reported as p50/p95/p99 over the per-request wall clock
observed by the *client*, which includes queueing — the number an SLA
would be written against.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.gateway.client import GatewayClient
from repro.gateway.gateway import GatewayConfig, MetasearchGateway
from repro.gateway.protocol import ErrorCode, GatewayError
from repro.obs import (
    FileTraceSink,
    format_tier_breakdown,
    load_spans,
    tier_breakdown,
)
from repro.service.bench import build_trained_testbed
from repro.service.faults import FaultInjector
from repro.service.resilience import RetryPolicy
from repro.service.server import MetasearchService, ServiceConfig

__all__ = [
    "BenchGatewayConfig",
    "run_bench_gateway",
    "format_bench_gateway",
    "validate_bench_gateway",
]


@dataclass(frozen=True)
class BenchGatewayConfig:
    """Knobs of the gateway benchmark."""

    scale: float = 0.05
    seed: int = 2004
    n_train: int = 200
    n_test: int = 80
    k: int = 3
    certainty: float = 0.9
    batch_size: int = 16
    workers: int = 8
    pool_workers: int = 0
    mean_latency_ms: float = 25.0
    latency_jitter: float = 0.5
    timeout_ms: float = 250.0
    train_queries_cap: int | None = None
    # coalesce phase: a concurrent burst over few unique queries.
    coalesce_requests: int = 60
    coalesce_unique: int = 6
    # shed phase: more open-loop arrivals than a 1-wide, short-queue
    # gateway can admit.
    shed_requests: int = 24
    shed_queue: int = 2
    shed_interval_ms: float = 1.0
    # When set, both phases run with tracing enabled, span records
    # stream to this NDJSON file, and the report carries a per-tier
    # latency breakdown (see docs/OBSERVABILITY.md).
    trace_path: str | None = None

    def __post_init__(self) -> None:
        if self.coalesce_requests < 1 or self.shed_requests < 1:
            raise ConfigurationError("request counts must be >= 1")
        if self.coalesce_unique < 1:
            raise ConfigurationError("coalesce_unique must be >= 1")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.pool_workers < 0:
            raise ConfigurationError("pool_workers must be >= 0")


def _percentile(ordered: list[float], pct: float) -> float:
    rank = max(1, round(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _latency_summary(wall_ms: list[float]) -> dict[str, float]:
    if not wall_ms:
        return {"samples": 0}
    ordered = sorted(wall_ms)
    return {
        "samples": len(ordered),
        "p50_ms": round(_percentile(ordered, 50.0), 3),
        "p95_ms": round(_percentile(ordered, 95.0), 3),
        "p99_ms": round(_percentile(ordered, 99.0), 3),
        "max_ms": round(ordered[-1], 3),
    }


def _service(
    metasearcher,
    config: BenchGatewayConfig,
    cache_enabled: bool,
    trace_sink: FileTraceSink | None = None,
) -> MetasearchService:
    injector = FaultInjector(
        seed=config.seed,
        mean_latency_s=config.mean_latency_ms / 1000.0,
        latency_jitter=config.latency_jitter,
        error_rate=0.0,
    )
    return MetasearchService(
        metasearcher,
        config=ServiceConfig(
            max_workers=config.workers,
            batch_size=config.batch_size,
            retry=RetryPolicy(timeout_s=config.timeout_ms / 1000.0),
            cache_ttl_s=None,
            cache_enabled=cache_enabled,
            pool_workers=config.pool_workers,
            trace=True if trace_sink is not None else None,
        ),
        injector=injector,
        trace_sink=trace_sink,
    )


async def _coalesce_phase(
    metasearcher,
    queries: list[str],
    config: BenchGatewayConfig,
    trace_sink: FileTraceSink | None = None,
) -> dict[str, object]:
    # Cache off: every answer the backend does NOT compute is
    # attributable to coalescing alone.
    service = _service(
        metasearcher, config, cache_enabled=False, trace_sink=trace_sink
    )
    gateway = MetasearchGateway(
        service,
        GatewayConfig(
            max_inflight=config.workers,
            max_queue=config.coalesce_requests,
        ),
    )
    wall_ms: list[float] = []
    coalesced = 0
    ok = 0
    try:
        async with gateway:
            client = await GatewayClient.connect("127.0.0.1", gateway.port)
            try:

                async def one(index: int) -> None:
                    nonlocal coalesced, ok
                    query = queries[index % len(queries)]
                    started = time.perf_counter()
                    result = await client.search(
                        query, k=config.k, certainty=config.certainty
                    )
                    wall_ms.append(
                        (time.perf_counter() - started) * 1000.0
                    )
                    ok += 1
                    if result["served"]["coalesced"]:
                        coalesced += 1

                await asyncio.gather(
                    *(one(i) for i in range(config.coalesce_requests))
                )
            finally:
                await client.close()
        snapshot = service.snapshot()
    finally:
        service.shutdown()
    backend_calls = int(snapshot["counters"]["queries_served"])
    return {
        "requests": config.coalesce_requests,
        "unique_queries": len(queries),
        "ok": ok,
        "coalesced": coalesced,
        "coalesce_hit_rate": round(
            coalesced / config.coalesce_requests, 6
        ),
        "backend_serve_calls": backend_calls,
        "gateway_coalesced_counter": int(
            snapshot["counters"]["gateway_coalesced"]
        ),
        "latency": _latency_summary(wall_ms),
    }


async def _shed_phase(
    metasearcher, queries: list[str], config: BenchGatewayConfig
) -> dict[str, object]:
    service = _service(metasearcher, config, cache_enabled=False)
    gateway = MetasearchGateway(
        service,
        GatewayConfig(
            max_inflight=1,
            max_queue=config.shed_queue,
            # Coalescing off so every unique request must be admitted
            # on its own — the shed path is what's under test.
            coalesce=False,
        ),
    )
    wall_ms: list[float] = []
    ok = 0
    shed = 0
    retry_hints: list[float] = []
    unexpected: list[str] = []
    try:
        async with gateway:
            client = await GatewayClient.connect("127.0.0.1", gateway.port)
            try:

                async def one(index: int) -> None:
                    nonlocal ok, shed
                    query = f"{queries[index % len(queries)]} v{index}"
                    started = time.perf_counter()
                    try:
                        await client.search(
                            query, k=config.k, certainty=config.certainty
                        )
                        ok += 1
                    except GatewayError as error:
                        if error.code is ErrorCode.OVERLOADED:
                            shed += 1
                            if error.retry_after_ms is not None:
                                retry_hints.append(error.retry_after_ms)
                        else:
                            unexpected.append(error.code.value)
                    finally:
                        wall_ms.append(
                            (time.perf_counter() - started) * 1000.0
                        )

                # Open loop: arrivals are paced by the generator, not by
                # completions, so the gateway has no way to push back
                # except shedding.
                tasks = []
                for index in range(config.shed_requests):
                    tasks.append(asyncio.create_task(one(index)))
                    await asyncio.sleep(config.shed_interval_ms / 1000.0)
                await asyncio.gather(*tasks)
            finally:
                await client.close()
            # Every response has been received, so every request task
            # should be gone; a yield lets done-callbacks run first.
            await asyncio.sleep(0)
            leaked = gateway.open_tasks
        snapshot = service.snapshot()
    finally:
        service.shutdown()
    return {
        "requests": config.shed_requests,
        "ok": ok,
        "shed": shed,
        "shed_rate": round(shed / config.shed_requests, 6),
        "unexpected_errors": unexpected,
        "retry_after_ms_mean": (
            round(sum(retry_hints) / len(retry_hints), 3)
            if retry_hints
            else None
        ),
        "gateway_shed_counter": int(snapshot["counters"]["gateway_shed"]),
        "leaked_tasks": leaked,
        "clean_drain": leaked == 0 and not unexpected,
        "latency": _latency_summary(wall_ms),
    }


def run_bench_gateway(
    config: BenchGatewayConfig | None = None,
) -> dict[str, object]:
    """Run both phases; returns a JSON-able report."""
    config = config or BenchGatewayConfig()
    context, metasearcher = build_trained_testbed(
        scale=config.scale,
        seed=config.seed,
        n_train=config.n_train,
        n_test=config.n_test,
        batch_size=config.batch_size,
        train_queries_cap=config.train_queries_cap,
    )
    unique = [
        " ".join(query.terms)
        for query in context.test_queries[: config.coalesce_unique]
    ]
    if not unique:
        raise ConfigurationError("testbed produced no test queries")

    # One span file spans both phases (the shed phase runs untraced —
    # its service exists to be overloaded, not measured tier-by-tier).
    trace_sink = (
        None
        if config.trace_path is None
        else FileTraceSink(config.trace_path)
    )

    async def both() -> tuple[dict, dict]:
        coalesce = await _coalesce_phase(
            metasearcher, unique, config, trace_sink=trace_sink
        )
        shed = await _shed_phase(metasearcher, unique, config)
        return coalesce, shed

    coalesce, shed = asyncio.run(both())
    trace: dict[str, object] | None = None
    if trace_sink is not None:
        trace_sink.close()
        trace = {
            "path": config.trace_path,
            "spans": trace_sink.emitted,
            "breakdown": tier_breakdown(load_spans(config.trace_path)),
        }
    return {
        "config": {
            "scale": config.scale,
            "seed": config.seed,
            "k": config.k,
            "certainty": config.certainty,
            "workers": config.workers,
            "pool_workers": config.pool_workers,
            "mean_latency_ms": config.mean_latency_ms,
            "coalesce_requests": config.coalesce_requests,
            "coalesce_unique": config.coalesce_unique,
            "shed_requests": config.shed_requests,
            "shed_queue": config.shed_queue,
        },
        "databases": len(context.mediator),
        "coalesce": coalesce,
        "shed": shed,
        "trace": trace,
    }


def format_bench_gateway(report: dict) -> str:
    """Human-readable benchmark summary (full report stays JSON)."""
    coalesce = report["coalesce"]
    shed = report["shed"]
    lines = [
        f"databases            : {report['databases']}",
        "",
        "coalesce phase (cache disabled):",
        f"  requests           : {coalesce['requests']} "
        f"({coalesce['unique_queries']} unique)",
        f"  coalesced          : {coalesce['coalesced']} "
        f"(hit rate {coalesce['coalesce_hit_rate']:.0%})",
        f"  backend serves     : {coalesce['backend_serve_calls']}",
        f"  latency p50/p95/p99: "
        f"{coalesce['latency'].get('p50_ms', '-')} / "
        f"{coalesce['latency'].get('p95_ms', '-')} / "
        f"{coalesce['latency'].get('p99_ms', '-')} ms",
        "",
        "shed phase (max_inflight=1):",
        f"  requests           : {shed['requests']}",
        f"  ok / shed          : {shed['ok']} / {shed['shed']} "
        f"(shed rate {shed['shed_rate']:.0%})",
        f"  retry_after_ms mean: {shed['retry_after_ms_mean']}",
        f"  clean drain        : {shed['clean_drain']} "
        f"(leaked tasks: {shed['leaked_tasks']})",
    ]
    if report.get("trace"):
        trace = report["trace"]
        lines += [
            "",
            f"per-tier latency breakdown ({trace['spans']} spans "
            f"-> {trace['path']}):",
            format_tier_breakdown(trace["breakdown"]),
        ]
    lines += [
        "",
        "report:",
        json.dumps(report, indent=2, sort_keys=True),
    ]
    return "\n".join(lines)


def validate_bench_gateway(report: dict) -> list[str]:
    """The benchmark's acceptance checks; returns failure messages.

    Empty list = the run demonstrated both mechanisms: coalescing
    merged concurrent duplicates (hit rate > 0 and strictly fewer
    backend serve calls than requests) and overload shed cleanly
    (typed responses, no leaked tasks, clean drain).
    """
    failures = []
    coalesce = report["coalesce"]
    shed = report["shed"]
    if coalesce["ok"] != coalesce["requests"]:
        failures.append(
            f"coalesce phase: {coalesce['ok']}/{coalesce['requests']} ok"
        )
    if coalesce["coalesced"] < 1:
        failures.append("coalesce phase: no request was coalesced")
    if coalesce["backend_serve_calls"] >= coalesce["requests"]:
        failures.append(
            "coalesce phase: backend served "
            f"{coalesce['backend_serve_calls']} calls for "
            f"{coalesce['requests']} requests (no collapsing)"
        )
    if shed["shed"] < 1:
        failures.append("shed phase: nothing was shed")
    if shed["ok"] + shed["shed"] != shed["requests"]:
        failures.append(
            f"shed phase: {shed['ok']} ok + {shed['shed']} shed != "
            f"{shed['requests']} requests"
        )
    if shed["unexpected_errors"]:
        failures.append(
            f"shed phase: unexpected errors {shed['unexpected_errors']}"
        )
    if not shed["clean_drain"]:
        failures.append(
            f"shed phase: unclean drain ({shed['leaked_tasks']} tasks)"
        )
    trace = report.get("trace")
    if trace is not None:
        if trace["spans"] < 1:
            failures.append("trace: traced run emitted no spans")
        for name in ("gateway.request", "service.serve"):
            if name not in trace["breakdown"]:
                failures.append(f"trace: no {name!r} spans recorded")
    return failures
