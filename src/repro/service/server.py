"""`MetasearchService`: the serving facade.

Ties the serving subsystem together around a trained
:class:`~repro.metasearch.metasearcher.Metasearcher`:

* probe rounds run through a :class:`ProbeExecutor` (concurrent,
  fault-tolerant, metered);
* a failed database degrades to its RD point estimate r̂ instead of
  failing the query;
* repeated ``(query, k, certainty)`` requests are answered from a
  TTL-keyed :class:`SelectionCache`;
* every request feeds the :class:`MetricsRegistry` (probes, retries,
  timeouts, fallbacks, cache hits, per-query latency and probe counts);
* with ``adapt`` on, every served probe also feeds the online
  adaptation loop (:mod:`repro.adapt`), and :meth:`swap_model`
  hot-swaps a refreshed error model into both execution paths with
  zero dropped requests.

The service serves *selections* — which databases to route a query to
and with what certainty — which is the expensive, probe-consuming part
of metasearch. Result fusion stays on the caller's side.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field, replace

from repro.core.backend import default_backend_name, get_backend
from repro.core.deadline import Deadline
from repro.core.probing import APro
from repro.core.selection import RDBasedSelector
from repro.exceptions import ConfigurationError, ReproError
from repro.metasearch.metasearcher import Metasearcher
from repro.obs import (
    TRACE_ENV,
    MultiTraceSink,
    RingBufferTraceSink,
    StderrTraceSink,
    Tracer,
    replay_spans,
    span,
    trace_active,
    wire_context,
)
from repro.service.cache import SelectionCache
from repro.service.executor import ProbeExecutor
from repro.service.faults import FaultInjector
from repro.service.metrics import MetricsRegistry
from repro.service.pool import (
    PoolExecutionError,
    PoolRequest,
    PoolResult,
    PoolUnavailableError,
    SelectionPool,
    StaleRequestError,
    WorkerCrashedError,
)
from repro.service.resilience import RetryPolicy
from repro.service.worker import build_worker_blob, refresh_worker_blob
from repro.types import Query

__all__ = ["ServiceConfig", "ServedAnswer", "MetasearchService"]

#: Env knob: default number of selection-pool workers when
#: ``ServiceConfig.pool_workers`` is left unset. Lets the whole test
#: suite (and any deployment) opt into the multiprocess selection tier
#: without touching call sites: ``REPRO_POOL_WORKERS=2 pytest ...``.
POOL_WORKERS_ENV = "REPRO_POOL_WORKERS"

#: Env knob: default for ``ServiceConfig.adapt`` when left unset. Any
#: non-zero integer turns the online-adaptation loop on for every
#: service constructed in the process: ``REPRO_ADAPT=1 pytest ...``.
ADAPT_ENV = "REPRO_ADAPT"

#: Env knob: default for ``ServiceConfig.cache_tier`` when left unset.
#: A ``host:port`` address points every service constructed in the
#: process at a shared cross-replica selection-cache tier (see
#: :mod:`repro.cluster.cachetier`): ``REPRO_CACHE_TIER=127.0.0.1:7071``.
CACHE_TIER_ENV = "REPRO_CACHE_TIER"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the serving layer.

    Parameters
    ----------
    max_workers:
        Probe thread-pool width (1 = serial execution).
    batch_size:
        Probes issued per APro decision round. ``None`` inherits the
        metasearcher's ``probe_batch_size``. Widths above 1 are what
        give the executor probes to overlap.
    retry:
        Timeout/retry policy applied to every database.
    cache_ttl_s:
        Selection-cache TTL; ``None`` disables expiry.
    cache_entries:
        Selection-cache capacity (LRU beyond it).
    cache_enabled:
        Turn the selection cache off entirely (benchmarking the raw
        probe path).
    cache_tier:
        ``host:port`` of a shared cross-replica selection-cache tier
        (:class:`repro.cluster.cachetier.CacheTierServer`); the local
        cache becomes the L1 in front of it. ``None`` (the default)
        reads the ``REPRO_CACHE_TIER`` env knob, falling back to no
        tier. The tier is an optimization, never a dependency: every
        failure degrades to a miss and is counted in
        ``cache_tier_errors``.
    cache_tier_timeout_s:
        Socket timeout on tier round trips (kept short so a sick tier
        cannot stall the serve path).
    pool_workers:
        Selection-pool width: number of worker *processes* running the
        CPU-bound selection stages (``0`` = in-process selection, the
        historical behaviour). ``None`` (the default) reads the
        ``REPRO_POOL_WORKERS`` env knob, falling back to ``0``.
    pool_mode:
        Dispatch protocol. Only ``"query"`` (whole-query dispatch with
        a probe callback over the worker pipe) is implemented — the
        field exists so the alternative parent-driven-rounds protocol
        has a configuration seam if it is ever needed; see
        ``docs/PERFORMANCE.md`` for why whole-query won.
    pool_tasks_per_worker:
        Recycle a pool worker after this many requests (``None`` =
        never). The standard hedge against slow leaks in long-lived
        workers.
    pool_lease_timeout_s:
        How long a request may wait for a free pool worker before
        falling back to in-process selection.
    pool_max_pending:
        Bound on requests waiting for a pool lease at once; beyond it
        requests fall back in-process immediately.
    adapt:
        Enable the online-adaptation loop (:mod:`repro.adapt`): every
        served probe is recorded as a labeled sample, drift checks run
        on a cadence, and — with ``adapt_auto_swap`` — a refreshed
        model is hot-swapped into the live service. ``None`` (the
        default) reads the ``REPRO_ADAPT`` env knob, falling back to
        off.
    adapt_window:
        Serve-time samples retained per database.
    adapt_check_every:
        Observations between drift checks.
    adapt_significance:
        χ² p-value at or below which a database counts as drifted.
    adapt_min_samples:
        Window floor below which a database is never flagged.
    adapt_auto_swap:
        Swap automatically when a check flags drift (off = observe and
        flag only; operators or the bench call ``swap_model``).
    trace:
        Enable request tracing (:mod:`repro.obs`): every request grows
        a span tree recorded in an in-memory ring buffer, readable via
        :meth:`MetasearchService.trace_spans` and the gateway's
        ``trace`` op. ``None`` (the default) reads the ``REPRO_TRACE``
        env knob (``1`` = on, ``stderr`` = on + NDJSON span log to
        stderr), falling back to off.
    trace_stderr:
        Additionally log every span record to stderr as NDJSON.
    trace_buffer:
        Ring-buffer capacity in span records (oldest evicted beyond
        it; evictions count in ``trace_spans_dropped``).
    backend:
        Numeric backend name for the probabilistic core (see
        :mod:`repro.core.backend`). ``None`` (the default) resolves the
        registry default — the ``REPRO_BACKEND`` env knob, falling back
        to ``numpy``. Validated at construction: an unknown name fails
        here, not on the first request. The resolved name reaches every
        APro the service builds, including pool workers, and is
        reported in :meth:`MetasearchService.snapshot`. Backends are
        answer-invariant (the equality contract pins them to the
        ``python`` oracle), so this knob trades speed, never results.
    """

    max_workers: int = 8
    batch_size: int | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    cache_ttl_s: float | None = 300.0
    cache_entries: int = 4096
    cache_enabled: bool = True
    cache_tier: str | None = None
    cache_tier_timeout_s: float = 1.0
    pool_workers: int | None = None
    pool_mode: str = "query"
    pool_tasks_per_worker: int | None = None
    pool_lease_timeout_s: float = 5.0
    pool_max_pending: int = 64
    adapt: bool | None = None
    adapt_window: int = 256
    adapt_check_every: int = 64
    adapt_significance: float = 0.01
    adapt_min_samples: int = 48
    adapt_auto_swap: bool = False
    trace: bool | None = None
    trace_stderr: bool = False
    trace_buffer: int = 2048
    backend: str | None = None

    def __post_init__(self) -> None:
        # Validate everything here, at construction, so a bad value
        # fails with a clear message instead of deep inside the pool or
        # cache on the first request.
        if self.max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if not isinstance(self.retry, RetryPolicy):
            raise ConfigurationError(
                f"retry must be a RetryPolicy, got {type(self.retry).__name__}"
            )
        if self.cache_ttl_s is not None and self.cache_ttl_s <= 0:
            raise ConfigurationError(
                f"cache_ttl_s must be > 0 (or None for no expiry), "
                f"got {self.cache_ttl_s}"
            )
        if self.cache_entries < 1:
            raise ConfigurationError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )
        if self.cache_tier is None:
            raw = os.environ.get(CACHE_TIER_ENV, "").strip()
            object.__setattr__(self, "cache_tier", raw or None)
        if self.cache_tier is not None:
            # Validate the address shape here, at construction; the
            # lazy import keeps repro.service free of a module-level
            # dependency on repro.cluster (which imports the gateway,
            # which imports this module).
            from repro.cluster.cachetier import parse_address

            parse_address(self.cache_tier)
        if self.cache_tier_timeout_s <= 0:
            raise ConfigurationError(
                f"cache_tier_timeout_s must be > 0, "
                f"got {self.cache_tier_timeout_s}"
            )
        if self.pool_workers is None:
            raw = os.environ.get(POOL_WORKERS_ENV, "").strip()
            try:
                resolved = int(raw) if raw else 0
            except ValueError:
                raise ConfigurationError(
                    f"{POOL_WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None
            object.__setattr__(self, "pool_workers", resolved)
        if self.pool_workers < 0:
            raise ConfigurationError(
                f"pool_workers must be >= 0, got {self.pool_workers}"
            )
        if self.pool_mode != "query":
            raise ConfigurationError(
                f"pool_mode must be 'query' (whole-query dispatch with "
                f"probe callback), got {self.pool_mode!r}"
            )
        if (
            self.pool_tasks_per_worker is not None
            and self.pool_tasks_per_worker < 1
        ):
            raise ConfigurationError(
                f"pool_tasks_per_worker must be >= 1, "
                f"got {self.pool_tasks_per_worker}"
            )
        if self.pool_lease_timeout_s <= 0:
            raise ConfigurationError(
                f"pool_lease_timeout_s must be > 0, "
                f"got {self.pool_lease_timeout_s}"
            )
        if self.pool_max_pending < 1:
            raise ConfigurationError(
                f"pool_max_pending must be >= 1, got {self.pool_max_pending}"
            )
        if self.adapt is None:
            raw = os.environ.get(ADAPT_ENV, "").strip()
            try:
                resolved = bool(int(raw)) if raw else False
            except ValueError:
                raise ConfigurationError(
                    f"{ADAPT_ENV} must be an integer, got {raw!r}"
                ) from None
            object.__setattr__(self, "adapt", resolved)
        if self.adapt_window < 1:
            raise ConfigurationError(
                f"adapt_window must be >= 1, got {self.adapt_window}"
            )
        if self.adapt_check_every < 1:
            raise ConfigurationError(
                f"adapt_check_every must be >= 1, "
                f"got {self.adapt_check_every}"
            )
        if not 0.0 < self.adapt_significance < 1.0:
            raise ConfigurationError(
                f"adapt_significance must be in (0, 1), "
                f"got {self.adapt_significance}"
            )
        if self.adapt_min_samples < 1:
            raise ConfigurationError(
                f"adapt_min_samples must be >= 1, "
                f"got {self.adapt_min_samples}"
            )
        if self.trace is None:
            raw = os.environ.get(TRACE_ENV, "").strip().lower()
            if raw == "stderr":
                object.__setattr__(self, "trace", True)
                object.__setattr__(self, "trace_stderr", True)
            else:
                try:
                    resolved = bool(int(raw)) if raw else False
                except ValueError:
                    raise ConfigurationError(
                        f"{TRACE_ENV} must be an integer or 'stderr', "
                        f"got {raw!r}"
                    ) from None
                object.__setattr__(self, "trace", resolved)
        if self.trace_buffer < 1:
            raise ConfigurationError(
                f"trace_buffer must be >= 1, got {self.trace_buffer}"
            )
        if self.backend is None:
            # Registry default: use_backend override > REPRO_BACKEND >
            # numpy. Raises ConfigurationError when the env names an
            # unregistered backend.
            object.__setattr__(self, "backend", default_backend_name())
        else:
            # Resolve through the registry so an unknown name fails at
            # construction; store the canonical (lowercased) name.
            object.__setattr__(self, "backend", get_backend(self.backend).name)


@dataclass(frozen=True)
class ServedAnswer:
    """One served selection.

    ``degraded`` is ``None`` for a full-quality answer; the value
    ``"deadline"`` marks an answer whose probing loop was cut short by
    an expiring wall-clock :class:`~repro.core.deadline.Deadline` —
    ``certainty`` then reports what was actually reached, which may be
    below ``certainty_required``. Degraded answers are never cached.

    ``probe_order`` lists the probed databases in execution order — the
    pool-identity tests compare it exactly between in-process and
    multiprocess execution.
    """

    query: Query
    k: int
    certainty_required: float
    selected: tuple[str, ...]
    certainty: float
    probes: int
    cache_hit: bool
    wall_ms: float
    degraded: str | None = None
    probe_order: tuple[str, ...] = ()


class MetasearchService:
    """Concurrent, fault-tolerant selection serving.

    Parameters
    ----------
    metasearcher:
        A *trained* metasearcher (raises otherwise).
    config:
        Serving tunables.
    injector:
        Optional deterministic fault schedule (benchmarks and tests).
    metrics:
        Registry to report into (created if omitted).
    clock:
        Monotonic clock for cache expiry (injectable for tests).
    sleeper:
        Forwarded to the resilient wrappers (tests inject a recorder).
    trace_sink:
        Extra :class:`~repro.obs.TraceSink` to fan span records into
        alongside the ring buffer (benches pass a file sink). Ignored
        when tracing is off.
    """

    def __init__(
        self,
        metasearcher: Metasearcher,
        config: ServiceConfig | None = None,
        injector: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleeper: Callable[[float], None] | None = None,
        trace_sink=None,
    ) -> None:
        if not metasearcher.is_trained:
            raise ReproError(
                "MetasearchService requires a trained Metasearcher"
            )
        self._metasearcher = metasearcher
        self._config = config or ServiceConfig()
        self._metrics = metrics or MetricsRegistry()
        selector = metasearcher.selector
        self._executor = ProbeExecutor(
            selector.mediator,
            definition=selector.definition,
            max_workers=self._config.max_workers,
            policy=self._config.retry,
            injector=injector,
            fallback=selector.estimate,
            metrics=self._metrics,
            sleeper=sleeper,
        )
        self._apro = APro(
            selector,
            policy=metasearcher.policy,
            prober=self._executor,
            backend=self._config.backend,
            prune=metasearcher.config.prune_mode in ("exact", "topm"),
        )
        # The fingerprinted state blob is built whether or not the pool
        # is enabled: it names the model version in cache keys and is
        # what a hot swap refreshes.
        self._blob = build_worker_blob(
            metasearcher, backend=self._config.backend
        )
        self._pool: SelectionPool | None = None
        if self._config.pool_workers > 0:
            self._pool = SelectionPool(
                self._blob,
                prober=self._pool_probe,
                workers=self._config.pool_workers,
                metrics=self._metrics,
                max_tasks_per_worker=self._config.pool_tasks_per_worker,
                lease_timeout_s=self._config.pool_lease_timeout_s,
                max_pending=self._config.pool_max_pending,
            )
        self._cache: SelectionCache | None = None
        if self._config.cache_enabled:
            self._cache = SelectionCache(
                ttl_s=self._config.cache_ttl_s,
                max_entries=self._config.cache_entries,
                clock=clock,
            )
        self._cache_tier = None
        if self._config.cache_tier is not None:
            # Lazy import for the same layering reason as in
            # ServiceConfig: repro.cluster imports this module.
            from repro.cluster.cachetier import CacheTierClient

            self._cache_tier = CacheTierClient(
                self._config.cache_tier,
                timeout_s=self._config.cache_tier_timeout_s,
            )
        # Pre-register every service-level instrument so the exported
        # key-set is identical across clean, faulty and cache-disabled
        # runs — snapshot diffing relies on stable keys.
        for counter in (
            "queries_served",
            "cache_hits",
            "cache_misses",
            # Cache-tier instruments are registered whether or not a
            # tier is configured, so pointing a replica at one never
            # changes the snapshot key-set.
            "cache_tier_hits",
            "cache_tier_misses",
            "cache_tier_puts",
            "cache_tier_errors",
            # Pool instruments are registered whether or not the pool is
            # enabled, so enabling it never changes the snapshot key-set.
            "pool_dispatch",
            "pool_worker_restarts",
            "pool_worker_recycles",
            "pool_fallback_total",
            "pool_stale_refusals",
            # Adaptation instruments, likewise always registered.
            "adapt_observations_total",
            "adapt_drift_checks",
            "adapt_drift_flagged",
            "adapt_swaps_total",
            # Tracing instruments, likewise always registered.
            "trace_spans_total",
            "trace_spans_dropped",
            # Candidate-pruning instruments, registered for every prune
            # mode so flipping REPRO_PREFILTER never changes the
            # snapshot key-set.
            "prefilter_requests_total",
            "prefilter_dropped_total",
        ):
            self._metrics.counter(counter)
        self._metrics.gauge("pool_queue_depth")
        # Per-request count of databases excluded from the belief
        # machinery (bound pruning + prefilter keep); all zeros with
        # pruning off.
        self._metrics.histogram("pruned_databases")
        self._metrics.histogram("adapt_swap_ms", deterministic=False)
        self._metrics.histogram("query_probes")
        self._metrics.histogram("query_probes_uncached")
        self._metrics.histogram("query_latency_wall_ms", deterministic=False)
        # Per-stage wall clocks of the uncached path: query analysis vs
        # the APro probing loop (the hot path docs/PERFORMANCE.md
        # profiles; stage_apro_ms is where the incremental-belief-update
        # speedups land; stage_pool_ms isolates the pool's
        # lease+dispatch+conversation wall inside stage_apro_ms).
        self._metrics.histogram("stage_analyze_ms", deterministic=False)
        self._metrics.histogram("stage_apro_ms", deterministic=False)
        self._metrics.histogram("stage_pool_ms", deterministic=False)
        self._tracer: Tracer | None = None
        self._trace_ring: RingBufferTraceSink | None = None
        if self._config.trace:
            self._trace_ring = RingBufferTraceSink(
                self._config.trace_buffer,
                on_drop=self._metrics.counter("trace_spans_dropped").inc,
            )
            sinks: list = [self._trace_ring]
            if self._config.trace_stderr:
                sinks.append(StderrTraceSink())
            if trace_sink is not None:
                sinks.append(trace_sink)
            self._tracer = Tracer(
                sinks[0] if len(sinks) == 1 else MultiTraceSink(*sinks),
                on_emit=self._metrics.counter("trace_spans_total").inc,
            )
        self._observations = None
        self._adaptation = None
        if self._config.adapt:
            # Imported lazily: repro.adapt itself imports service
            # modules, and this module is imported by the package init.
            from repro.adapt import (
                AdaptationConfig,
                ModelSwapCoordinator,
                ObservationSink,
                ObservingProber,
            )

            self._observations = ObservationSink(
                window=self._config.adapt_window, metrics=self._metrics
            )
            # The tap wraps whatever prober the APro holds; both the
            # in-process loop and pool workers' parent-side probe
            # rounds flow through this attribute.
            self._apro._prober = ObservingProber(
                self._apro.prober,
                selector=selector,
                sink=self._observations,
            )
            self._adaptation = ModelSwapCoordinator(
                baseline=metasearcher.error_model,
                sink=self._observations,
                config=AdaptationConfig(
                    window=self._config.adapt_window,
                    check_every=self._config.adapt_check_every,
                    significance=self._config.adapt_significance,
                    min_samples=self._config.adapt_min_samples,
                    auto_swap=self._config.adapt_auto_swap,
                ),
                swap=self.swap_model,
                metrics=self._metrics,
            )

    @property
    def metrics(self) -> MetricsRegistry:
        """The service's metrics registry."""
        return self._metrics

    @property
    def cache(self) -> SelectionCache | None:
        """The selection cache (``None`` when disabled)."""
        return self._cache

    @property
    def executor(self) -> ProbeExecutor:
        """The probe executor."""
        return self._executor

    @property
    def pool(self) -> SelectionPool | None:
        """The selection pool (``None`` when ``pool_workers == 0``)."""
        return self._pool

    @property
    def state_fingerprint(self) -> str:
        """Content fingerprint of the model state currently serving."""
        return self._blob.fingerprint

    @property
    def adaptation(self):
        """The :class:`~repro.adapt.ModelSwapCoordinator`, or ``None``."""
        return self._adaptation

    @property
    def tracer(self) -> Tracer | None:
        """The request tracer (``None`` when tracing is disabled)."""
        return self._tracer

    def trace_spans(self, limit: int | None = None) -> list[dict]:
        """Recent span records from the ring buffer, oldest first.

        Empty when tracing is disabled — callers need no enabled
        check before asking.
        """
        if self._tracer is None:
            return []
        return self._tracer.recent(limit)

    @property
    def observations(self):
        """The :class:`~repro.adapt.ObservationSink`, or ``None``."""
        return self._observations

    def swap_model(self, error_model) -> str:
        """Hot-swap a refreshed error model into the live service.

        Zero-downtime across both execution paths: the in-process
        selector/APro are rebuilt (keeping the current prober, so probe
        taps and test interposers survive), the fingerprinted state
        blob is refreshed, and a running pool is updated in place —
        idle workers reload immediately, busy ones finish their
        in-flight request under the old state and reload lazily (see
        :meth:`SelectionPool.update_state`). Requests that began before
        the swap answer under the model their fingerprint names;
        requests that begin after it answer under the new one. Returns
        the new fingerprint.

        Fingerprints are content hashes: swapping in a bit-identical
        model state yields the same fingerprint, every cache key stays
        valid, and the pool reload short-circuits — a no-op swap is
        free and answer-invariant.
        """
        with span("adapt.swap") as swap_span:
            fingerprint = self._swap_model(error_model)
            swap_span.set_fingerprint(fingerprint)
            return fingerprint

    def _swap_model(self, error_model) -> str:
        started = time.perf_counter()
        # The trained selector's non-model state (mediator, summaries,
        # estimator, classifier, definition) is swap-invariant; only
        # the error model moves.
        old_selector = self._metasearcher.selector
        new_selector = RDBasedSelector(
            mediator=old_selector.mediator,
            summaries=old_selector.summaries,
            estimator=old_selector.estimator,
            error_model=error_model,
            classifier=old_selector.classifier,
            definition=old_selector.definition,
        )
        prober = self._apro.prober
        self._apro = APro(
            new_selector,
            policy=self._metasearcher.policy,
            prober=prober,
            backend=self._config.backend,
            prune=self._metasearcher.config.prune_mode
            in ("exact", "topm"),
        )
        if self._observations is not None and hasattr(prober, "retarget"):
            prober.retarget(new_selector)
        self._blob = refresh_worker_blob(
            self._blob, error_model.state_dict()
        )
        if self._pool is not None:
            self._pool.update_state(self._blob)
        self._metrics.counter("adapt_swaps_total").inc()
        self._metrics.histogram(
            "adapt_swap_ms", deterministic=False
        ).observe((time.perf_counter() - started) * 1000.0)
        return self._blob.fingerprint

    def _pool_probe(
        self, query: Query, indices: Sequence[int]
    ) -> Sequence[float]:
        """Parent-side probe callback for pool workers.

        Reads ``self._apro.prober`` at call time — not at pool
        construction — so whatever prober the in-process path would use
        right now (including test interposers patched onto the APro)
        also executes the pool's probe rounds.
        """
        return self._apro.prober.probe_batch(query, indices)

    def _batch_size(self) -> int:
        if self._config.batch_size is not None:
            return self._config.batch_size
        return self._metasearcher.config.probe_batch_size

    def serve(
        self,
        query: Query | str,
        k: int,
        certainty: float = 0.0,
        deadline: Deadline | None = None,
    ) -> ServedAnswer:
        """Answer one selection request (cache → probe → record).

        With a *deadline*, probing stops once it expires and the answer
        comes back marked ``degraded="deadline"`` with the certainty
        actually reached — never an exception. An already-expired
        deadline yields the pure no-probe RD-based selection (the
        ``max_probes=0`` contract). Cache hits are free and are served
        whatever the deadline; degraded answers are never cached, so a
        later unhurried request recomputes at full quality.

        With tracing on, the request runs under a ``service.serve``
        span — a child of the caller's active trace (the gateway's
        ``gateway.request``) when there is one, else a new root for
        direct callers.
        """
        if self._tracer is None and not trace_active():
            return self._serve(query, k, certainty, deadline)
        context = (
            span("service.serve", fingerprint=self._blob.fingerprint)
            if trace_active()
            else self._tracer.trace(
                "service.serve", fingerprint=self._blob.fingerprint
            )
        )
        with context as serve_span:
            answer = self._serve(query, k, certainty, deadline)
            if answer.degraded is not None:
                serve_span.set_outcome("degraded")
            return answer

    def _serve(
        self,
        query: Query | str,
        k: int,
        certainty: float,
        deadline: Deadline | None,
    ) -> ServedAnswer:
        started = time.perf_counter()
        with span("service.analyze", backend=self._config.backend):
            analyzed = self._metasearcher.analyze(query)
        analyze_ms = (time.perf_counter() - started) * 1000.0
        searcher_config = self._metasearcher.config
        # The state fingerprint keys the cache entry to the model that
        # computed it: a hot swap retires old entries wholesale (they
        # age out unreferenced) instead of serving selections a retired
        # model chose. Read once — a request that raced a swap lands
        # fully under one fingerprint or the other, never a mixture.
        key = (
            self._blob.fingerprint,
            analyzed,
            k,
            certainty,
            searcher_config.metric.name,
        )
        if self._cache is not None:
            with span("service.cache") as cache_span:
                cached = self._cache.get(key)
                cache_span.set_outcome("hit" if cached else "miss")
            if cached is not None:
                self._metrics.counter("cache_hits").inc()
                wall_ms = (time.perf_counter() - started) * 1000.0
                # A hit issues no probes: record 0 so `query_probes`
                # keeps measuring actual probe traffic, not what the
                # cached answer once cost.
                self._observe_query(0, wall_ms, hit=True)
                return replace(cached, cache_hit=True, wall_ms=wall_ms)
            self._metrics.counter("cache_misses").inc()
        if self._cache_tier is not None:
            # L2: another replica may have computed this exact answer
            # already. The round trip is bounded by the tier timeout and
            # absorbs every failure as a miss, so a sick tier costs
            # latency on misses, never correctness or availability.
            tier_answer = self._tier_get(key)
            if tier_answer is not None:
                if self._cache is not None:
                    # Promote to L1 so repeats stay local.
                    self._cache.put(key, tier_answer)
                wall_ms = (time.perf_counter() - started) * 1000.0
                self._observe_query(0, wall_ms, hit=True)
                return replace(tier_answer, wall_ms=wall_ms)
        apro_started = time.perf_counter()
        selection = self._select(analyzed, k, certainty, deadline)
        ended = time.perf_counter()
        self._metrics.histogram(
            "stage_analyze_ms", deterministic=False
        ).observe(analyze_ms)
        self._metrics.histogram(
            "stage_apro_ms", deterministic=False
        ).observe((ended - apro_started) * 1000.0)
        wall_ms = (ended - started) * 1000.0
        degraded = "deadline" if selection.deadline_expired else None
        answer = ServedAnswer(
            query=analyzed,
            k=k,
            certainty_required=certainty,
            selected=selection.selected,
            certainty=selection.certainty,
            probes=selection.probes,
            cache_hit=False,
            wall_ms=wall_ms,
            degraded=degraded,
            probe_order=selection.probe_order,
        )
        if degraded is None:
            # A deadline-degraded answer would poison the cache: an
            # unhurried repeat of the same request must probe to full
            # certainty, not inherit the cut-short one. The same rule
            # guards the shared tier, where a poisoned entry would
            # spread to every replica.
            if self._cache is not None:
                self._cache.put(key, answer)
            if self._cache_tier is not None:
                self._tier_put(key, answer)
        self._observe_query(answer.probes, wall_ms, hit=False)
        if self._adaptation is not None:
            self._adaptation.maybe_step()
        return answer

    def _select(
        self,
        analyzed: Query,
        k: int,
        threshold: float,
        deadline: Deadline | None,
    ) -> PoolResult:
        """Run the CPU-bound selection stages for one uncached request.

        Pool-first: with a healthy pool the request runs on a worker
        process (probe rounds still execute parent-side through
        :meth:`_pool_probe`). Any pool-side problem — no free worker,
        dispatch queue full, a crashed worker, an unhealthy pool —
        degrades to in-process execution and increments
        ``pool_fallback_total``: slower, never an outage. Both paths
        return the same :class:`~repro.service.pool.PoolResult` shape
        and, by construction, the same answer (see the pool-identity
        tests).
        """
        searcher_config = self._metasearcher.config
        if self._pool is not None and not self._pool.healthy:
            # Configured for the pool but it gave up (too many
            # consecutive crashes): every request degrades in-process,
            # visibly.
            self._metrics.counter("pool_fallback_total").inc()
        elif self._pool is not None:
            # Deadlines cross the process boundary as a remaining-time
            # budget: the worker re-anchors it on its own monotonic
            # clock, so an expired deadline (0 remaining) stays expired
            # and a live one keeps counting down while the worker runs.
            pool_started = time.perf_counter()
            result: PoolResult | None = None
            # Two attempts: a request built just before a hot swap
            # lands carries the retired fingerprint; the pool refuses
            # it with StaleRequestError and the request is rebuilt
            # against the new state — the answer a not-yet-started
            # request is entitled to. A second refusal (a swap storm)
            # degrades in-process like any other pool problem.
            for _ in range(2):
                # The dispatch span opens before the wire context is
                # captured, so the worker-side ``pool.worker`` span
                # (and the parent-side ``probe.*`` spans the worker's
                # callback rounds run) nest under ``pool.dispatch``.
                with span("pool.dispatch") as dispatch_span:
                    request = PoolRequest(
                        query=analyzed,
                        k=k,
                        threshold=threshold,
                        metric_name=searcher_config.metric.name,
                        fingerprint=self._pool.fingerprint,
                        max_probes=searcher_config.max_probes,
                        batch_size=self._batch_size(),
                        deadline_s=(
                            None
                            if deadline is None
                            else deadline.remaining_s()
                        ),
                        trace=wire_context(),
                    )
                    try:
                        result = self._pool.execute(request)
                    except StaleRequestError:
                        dispatch_span.set_outcome("stale_retry")
                        continue
                    except (
                        PoolUnavailableError,
                        WorkerCrashedError,
                        PoolExecutionError,
                    ):
                        dispatch_span.set_outcome("fallback")
                        break
                    else:
                        replay_spans(result.spans)
                        break
            if result is None:
                self._metrics.counter("pool_fallback_total").inc()
            else:
                self._metrics.histogram(
                    "stage_pool_ms", deterministic=False
                ).observe((time.perf_counter() - pool_started) * 1000.0)
                return self._observe_pruning(result, k)
        keep = None
        if self._metasearcher.prefilter is not None:
            # topm mode: the tier picks the candidate universe before
            # any belief math runs. Workers compute the identical keep
            # set from their fingerprinted blob state.
            with span("prefilter.keep", backend=self._config.backend):
                keep = self._metasearcher.prefilter_keep(analyzed, k)
        session = self._apro.run(
            analyzed,
            k=k,
            threshold=threshold,
            metric=searcher_config.metric,
            max_probes=searcher_config.max_probes,
            batch_size=self._batch_size(),
            deadline=deadline,
            keep=keep,
        )
        return self._observe_pruning(
            PoolResult(
                selected=session.final.names,
                certainty=session.final.expected_correctness,
                probes=session.num_probes,
                probe_order=tuple(
                    record.database for record in session.records
                ),
                deadline_expired=session.deadline_expired,
                pruned=session.pruned_databases,
            ),
            k,
        )

    def _observe_pruning(self, result: PoolResult, k: int) -> PoolResult:
        """Record the pruning instruments for one selection (both paths).

        The prefilter counters are derived from configuration (the keep
        width is a pure function of ``(top_m, k, n)``), so the pool and
        in-process paths account identically.
        """
        self._metrics.histogram("pruned_databases").observe(
            float(result.pruned)
        )
        if self._metasearcher.config.prune_mode == "topm":
            n = len(self._blob.database_names)
            kept = min(
                max(self._metasearcher.config.prefilter_top_m, k), n
            )
            self._metrics.counter("prefilter_requests_total").inc()
            self._metrics.counter("prefilter_dropped_total").inc(n - kept)
        return result

    def serve_stream(
        self,
        queries: Iterable[Query | str],
        k: int,
        certainty: float = 0.0,
    ) -> list[ServedAnswer]:
        """Serve a query stream in order."""
        return [self.serve(query, k, certainty) for query in queries]

    def _tier_key(self, key: tuple) -> str:
        from repro.cluster.cachetier import answer_key

        fingerprint, analyzed, k, certainty, metric_name = key
        return answer_key(fingerprint, analyzed, k, certainty, metric_name)

    def _tier_get(self, key: tuple) -> ServedAnswer | None:
        from repro.cluster.cachetier import decode_answer

        with span("service.cache_tier") as tier_span:
            errors_before = self._cache_tier.errors
            value = self._cache_tier.get(self._tier_key(key))
            if self._cache_tier.errors > errors_before:
                self._metrics.counter("cache_tier_errors").inc()
            answer = (
                None
                if value is None
                else decode_answer(value, key[1], key[2], key[3])
            )
            if answer is None:
                self._metrics.counter("cache_tier_misses").inc()
                tier_span.set_outcome("miss")
            else:
                self._metrics.counter("cache_tier_hits").inc()
                tier_span.set_outcome("hit")
            return answer

    def _tier_put(self, key: tuple, answer: ServedAnswer) -> None:
        from repro.cluster.cachetier import encode_answer

        errors_before = self._cache_tier.errors
        stored = self._cache_tier.put(
            self._tier_key(key), encode_answer(answer)
        )
        if self._cache_tier.errors > errors_before:
            self._metrics.counter("cache_tier_errors").inc()
        if stored:
            self._metrics.counter("cache_tier_puts").inc()

    def _observe_query(
        self, probes: int, wall_ms: float, hit: bool
    ) -> None:
        self._metrics.counter("queries_served").inc()
        self._metrics.histogram("query_probes").observe(float(probes))
        self._metrics.histogram(
            "query_latency_wall_ms", deterministic=False
        ).observe(wall_ms)
        if not hit:
            self._metrics.histogram("query_probes_uncached").observe(
                float(probes)
            )

    def snapshot(self) -> dict[str, object]:
        """Metrics plus cache stats, one JSON-able mapping."""
        out = self._metrics.snapshot()
        if self._cache is not None:
            stats = self._cache.stats()
            out["cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "expirations": stats.expirations,
                "size": stats.size,
                "hit_rate": round(stats.hit_rate, 6),
            }
        if self._adaptation is not None:
            out["adaptation"] = self._adaptation.snapshot()
        # Always present (even without a tier) so pointing a replica at
        # one never changes the snapshot's top-level key-set.
        out["cache_tier"] = {
            "enabled": self._cache_tier is not None,
            "address": (
                None
                if self._cache_tier is None
                else self._cache_tier.address
            ),
            "errors": (
                0 if self._cache_tier is None else self._cache_tier.errors
            ),
        }
        # Always present so switching numeric backends never changes
        # the snapshot's top-level key-set.
        out["backend"] = self._config.backend
        # Always present (even with pruning off) so flipping
        # REPRO_PREFILTER never changes the snapshot's top-level
        # key-set.
        out["prefilter"] = {
            "mode": self._metasearcher.config.prune_mode,
            "top_m": self._metasearcher.config.prefilter_top_m,
        }
        # Always present (even with tracing off) so enabling tracing
        # never changes the snapshot's top-level key-set.
        out["trace"] = {
            "enabled": self._tracer is not None,
            "buffered": (
                0 if self._trace_ring is None else len(self._trace_ring)
            ),
        }
        return out

    def result_detail(self, answer: ServedAnswer) -> list[dict]:
        """Per-database rows behind one answer (the cursor payload).

        One row per mediated database — its RD point estimate for the
        answered query, whether it was selected, and its position in
        the probe order (``None`` if unprobed) — sorted by estimate
        descending (name-ascending tiebreak). A pure function of
        (trained state, answer), so every replica of the same model
        produces identical rows: what lets a router hand out a handle
        from any replica. At federated scale these rows dwarf the
        answer payload, which is why they page through the gateway's
        ``fetch`` op instead of riding the search response.
        """
        selector = self._metasearcher.selector
        selected = set(answer.selected)
        probe_index = {
            name: index for index, name in enumerate(answer.probe_order)
        }
        rows = [
            {
                "database": db.name,
                "estimate": selector.estimate(db.name, answer.query),
                "selected": db.name in selected,
                "probe_index": probe_index.get(db.name),
            }
            for db in selector.mediator
        ]
        rows.sort(key=lambda row: (-row["estimate"], row["database"]))
        return rows

    def shutdown(self) -> None:
        """Release executor threads and stop pool workers."""
        if self._pool is not None:
            self._pool.shutdown()
        if self._cache_tier is not None:
            self._cache_tier.close()
        self._executor.shutdown()

    def __enter__(self) -> "MetasearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"MetasearchService(workers={self._config.max_workers}, "
            f"pool={self._config.pool_workers}, "
            f"cache={self._cache is not None})"
        )

    @staticmethod
    def selections(answers: Sequence[ServedAnswer]) -> list[tuple[str, ...]]:
        """The selected-name tuples of a stream (comparison helper)."""
        return [answer.selected for answer in answers]
