"""Result fusion (the paper's task 2, Fig. 1 arrow 2).

Merges the ranked first pages returned by the selected databases into a
single list. Cosine scores from different databases are not directly
comparable (idf statistics differ), so each source's scores are min-max
normalized before interleaving — a standard CombMNZ-style treatment
simplified for single-occurrence documents (a document lives in exactly
one database here).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.types import SearchResult

__all__ = ["FusedHit", "merge_results"]


@dataclass(frozen=True, slots=True)
class FusedHit:
    """One merged hit: originating database, document id, fused score."""

    database: str
    doc_id: int
    score: float


def _normalized_scores(result: SearchResult) -> list[tuple[int, float]]:
    hits = result.top_documents
    if not hits:
        return []
    scores = [hit.score for hit in hits]
    low, high = min(scores), max(scores)
    if high == low:
        return [(hit.doc_id, 1.0) for hit in hits]
    return [
        (hit.doc_id, (hit.score - low) / (high - low)) for hit in hits
    ]


def merge_results(
    results: Mapping[str, SearchResult],
    limit: int = 10,
) -> list[FusedHit]:
    """Fuse per-database result pages into one ranked list.

    Parameters
    ----------
    results:
        Mapping database-name -> its search result for the query.
    limit:
        Maximum number of fused hits returned.

    Ties are broken by database name then document id, keeping the
    merged ranking deterministic.
    """
    if limit < 0:
        raise ValueError(f"limit must be non-negative, got {limit}")
    fused: list[FusedHit] = []
    for database, result in results.items():
        for doc_id, score in _normalized_scores(result):
            fused.append(FusedHit(database=database, doc_id=doc_id, score=score))
    fused.sort(key=lambda hit: (-hit.score, hit.database, hit.doc_id))
    return fused[:limit]
