"""Database drift: how stale may the offline phase become?

Hidden-Web databases evolve after the metasearcher's offline phase; the
summaries and error distributions gradually go stale. This experiment
regenerates every database's *content* from the same recipe but a
different random stream (same topics, same sizes — fresh documents,
which is what steady-state churn looks like), keeps the old trained
state, and measures how selection quality degrades — and how much
adaptive probing recovers, since probes always observe current truth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


from repro.core.correctness import GoldenStandard
from repro.core.probing import APro
from repro.core.selection import RDBasedSelector
from repro.core.topk import CorrectnessMetric
from repro.corpus.collections import testbed_specs
from repro.corpus.generator import DocumentGenerator
from repro.corpus.zipf import ZipfVocabulary
from repro.experiments.harness import TrainedPipeline, train_pipeline
from repro.experiments.setup import ExperimentContext
from repro.hiddenweb.mediator import Mediator
from repro.metasearch.baselines import EstimationBasedSelector

__all__ = ["DriftResult", "drift_robustness"]


@dataclass(frozen=True)
class DriftResult:
    """Quality of each configuration on the drifted databases."""

    configuration: str
    avg_absolute: float
    avg_partial: float
    avg_probes: float
    num_queries: int


def _drifted_mediator(context: ExperimentContext, drift_seed: int) -> Mediator:
    """The same testbed recipes, regenerated with shifted content seeds."""
    background = ZipfVocabulary(
        context.config.background_vocab_size, seed=context.config.seed + 1
    )
    generator = DocumentGenerator(context.registry, background)
    corpora = {}
    for spec in testbed_specs(context.config.scale):
        drifted = replace(spec, seed=spec.seed + drift_seed)
        corpora[drifted.name] = generator.generate(drifted)
    return Mediator.from_documents(corpora, analyzer=context.analyzer)


def drift_robustness(
    context: ExperimentContext,
    pipeline: TrainedPipeline | None = None,
    k: int = 1,
    certainty: float = 0.8,
    drift_seed: int = 10_000,
    num_queries: int | None = 80,
) -> list[DriftResult]:
    """Stale state on drifted content, with and without probing.

    Configurations measured against the drifted golden standard:

    1. baseline selection with the *stale* summaries;
    2. RD-based selection with stale summaries + stale error model;
    3. the same stale state plus APro probing to *certainty* — probes
       hit the drifted databases, so they inject fresh truth.
    """
    pipeline = pipeline or train_pipeline(context)
    drifted = _drifted_mediator(context, drift_seed)
    golden = GoldenStandard(drifted, context.config.definition)
    queries = context.test_queries
    if num_queries is not None:
        queries = queries[:num_queries]

    stale_baseline = EstimationBasedSelector(
        drifted, pipeline.summaries, pipeline.estimator
    )
    # The selector's mediator must be the drifted one so probes hit the
    # live databases; summaries and the error model stay stale.
    stale_selector = RDBasedSelector(
        mediator=drifted,
        summaries=pipeline.summaries,
        estimator=pipeline.estimator,
        error_model=pipeline.error_model,
        definition=context.config.definition,
    )
    apro = APro(stale_selector)

    rows: list[DriftResult] = []

    def evaluate(name, select_fn, probes_per_query=None):
        total_abs = total_part = total_probes = 0.0
        for query in queries:
            names, probes = select_fn(query)
            cor_a, cor_p = golden.score(query, names, k)
            total_abs += cor_a
            total_part += cor_p
            total_probes += probes
        count = max(len(queries), 1)
        rows.append(
            DriftResult(
                configuration=name,
                avg_absolute=total_abs / count,
                avg_partial=total_part / count,
                avg_probes=total_probes / count,
                num_queries=len(queries),
            )
        )

    evaluate(
        "stale baseline",
        lambda q: (stale_baseline.select(q, k), 0),
    )
    evaluate(
        "stale RD-based, no probing",
        lambda q: (
            stale_selector.select(q, k, CorrectnessMetric.ABSOLUTE).names,
            0,
        ),
    )

    def apro_run(query):
        session = apro.run(
            query, k=k, threshold=certainty, metric=CorrectnessMetric.ABSOLUTE
        )
        return session.final.names, session.num_probes

    evaluate(f"stale RD-based + APro (t = {certainty})", apro_run)
    return rows
