"""Additional coverage: statistical calibration, integration variants."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.policies import CostAwareGreedyPolicy
from repro.core.topk import CorrectnessMetric, TopKComputer
from repro.metasearch.metasearcher import Metasearcher, MetasearcherConfig
from repro.stats.chisquare import pearson_chi2_test
from repro.stats.distribution import DiscreteDistribution as D


class TestChiSquareCalibration:
    """Under the null hypothesis, the test's p-values must be roughly
    uniform — the statistical property the goodness experiment rests on."""

    def test_null_p_values_roughly_uniform(self):
        rng = np.random.default_rng(123)
        proportions = np.array([0.1, 0.2, 0.3, 0.25, 0.15])
        p_values = []
        for _ in range(400):
            sample = rng.multinomial(200, proportions)
            p_values.append(
                pearson_chi2_test(sample.astype(float), proportions).p_value
            )
        p_values = np.array(p_values)
        # Mean of uniform(0,1) is 0.5; chi-square approximation keeps us
        # within a comfortable band at n=200.
        assert 0.40 <= p_values.mean() <= 0.60
        # Roughly 5 % of null samples should fall below 0.05.
        rejection_rate = (p_values < 0.05).mean()
        assert 0.01 <= rejection_rate <= 0.12

    def test_power_against_shifted_distribution(self):
        rng = np.random.default_rng(124)
        null = np.array([0.25, 0.25, 0.25, 0.25])
        shifted = np.array([0.4, 0.3, 0.2, 0.1])
        rejections = 0
        for _ in range(100):
            sample = rng.multinomial(300, shifted)
            result = pearson_chi2_test(sample.astype(float), null)
            if not result.accepted():
                rejections += 1
        assert rejections > 90  # strong power at this effect size


class TestExpectedCorrectnessWithMarginals:
    def test_supplied_marginals_reused(self):
        rds = [
            D.from_pairs([(1.0, 0.5), (3.0, 0.5)]),
            D.from_pairs([(2.0, 0.5), (4.0, 0.5)]),
            D.impulse(0.0),
        ]
        computer = TopKComputer(rds, 2)
        marginals = computer.marginals()
        direct = computer.expected_correctness(
            [0, 1], CorrectnessMetric.PARTIAL
        )
        reused = computer.expected_correctness(
            [0, 1], CorrectnessMetric.PARTIAL, marginals=marginals
        )
        assert direct == pytest.approx(reused)


class TestMetasearcherWithCostAwarePolicy:
    def test_end_to_end_with_costs(self, tiny_mediator, health_queries, analyzer):
        costs = [1.0] * len(tiny_mediator)
        costs[-1] = 50.0
        searcher = Metasearcher(
            tiny_mediator,
            MetasearcherConfig(samples_per_type=10),
            policy=CostAwareGreedyPolicy(costs),
            analyzer=analyzer,
        )
        searcher.train(health_queries[:40])
        session = searcher.select(health_queries[50], k=1, certainty=0.9)
        assert session.final.expected_correctness >= 0.9


class TestCliFig16:
    def test_fig16_runs(self, capsys):
        code = cli_main(
            [
                "--scale", "0.03",
                "--train-queries", "50",
                "--test-queries", "6",
                "fig", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# probes" in out

    def test_fig_policies_runs(self, capsys):
        code = cli_main(
            [
                "--scale", "0.03",
                "--train-queries", "50",
                "--test-queries", "6",
                "fig", "policies",
            ]
        )
        assert code == 0
        assert "greedy" in capsys.readouterr().out


class TestMetasearcherAnswerInvariants:
    def test_hits_come_only_from_selected(
        self, tiny_mediator, health_queries, analyzer
    ):
        searcher = Metasearcher(
            tiny_mediator,
            MetasearcherConfig(samples_per_type=10),
            analyzer=analyzer,
        )
        searcher.train(health_queries[:40])
        for query in health_queries[40:50]:
            answer = searcher.search(query, k=2, certainty=0.5, limit=4)
            assert len(answer.selected) == 2
            assert all(hit.database in answer.selected for hit in answer.hits)
            assert len(answer.hits) <= 4
            scores = [hit.score for hit in answer.hits]
            assert scores == sorted(scores, reverse=True)
