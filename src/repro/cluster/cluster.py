"""`LocalCluster`: replicas + cache tier + router as one unit.

The deployment shape the CLI, the benchmark, and CI all stand up: N
:class:`~repro.cluster.replica.SubprocessReplica` processes (each
rebuilding identical trained state from the shared
:class:`~repro.cluster.replica.ReplicaSpec`), an optional shared
:class:`~repro.cluster.cachetier.CacheTierServer` every replica is
pointed at, and a :class:`~repro.cluster.router.ClusterRouter` in
front. Async context manager; everything is torn down in reverse
order on exit, replicas gracefully (gateway drain) unless already
killed.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace

from repro.exceptions import ConfigurationError, ReproError
from repro.cluster.cachetier import CacheTierServer
from repro.cluster.replica import ReplicaSpec, SubprocessReplica
from repro.cluster.router import ClusterRouter, RouterConfig

__all__ = ["LocalCluster", "CLUSTER_REPLICAS_ENV"]

#: Env knob: default replica count for the ``cluster`` CLI command and
#: anything else that builds a :class:`LocalCluster` without an
#: explicit count: ``REPRO_CLUSTER_REPLICAS=4 python -m repro cluster``.
CLUSTER_REPLICAS_ENV = "REPRO_CLUSTER_REPLICAS"


class LocalCluster:
    """N subprocess replicas, a shared cache tier, one router.

    Parameters
    ----------
    replicas:
        How many replica processes to spawn.
    spec:
        The per-replica build recipe (testbed + stack knobs); the
        cache-tier address is filled in automatically when
        ``cache_tier`` is on.
    cache_tier:
        Stand up a shared selection-cache tier and point every replica
        at it.
    cache_tier_address:
        Use an externally-run tier at ``host:port`` instead of owning
        one (mutually exclusive with ``cache_tier=True`` semantics of
        ownership — the address wins).
    router_config:
        Router tunables; defaults to :class:`RouterConfig` with the
        cluster's port choice.
    """

    def __init__(
        self,
        replicas: int = 2,
        spec: ReplicaSpec | None = None,
        cache_tier: bool = True,
        cache_tier_address: str | None = None,
        router_config: RouterConfig | None = None,
    ) -> None:
        if replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {replicas}"
            )
        self._count = replicas
        self._spec = spec or ReplicaSpec()
        self._own_tier = cache_tier and cache_tier_address is None
        self._tier_address = cache_tier_address
        self._router_config = router_config or RouterConfig()
        self.tier: CacheTierServer | None = None
        self.replicas: list[SubprocessReplica] = []
        self.router: ClusterRouter | None = None

    @property
    def host(self) -> str:
        return self._router_config.host

    @property
    def port(self) -> int:
        if self.router is None:
            raise ReproError("cluster is not running")
        return self.router.port

    def replica(self, name: str) -> SubprocessReplica:
        for replica in self.replicas:
            if replica.name == name:
                return replica
        raise ReproError(f"unknown replica {name!r}")

    def kill(self, name: str) -> None:
        """SIGKILL one replica (failover drills)."""
        self.replica(name).kill()

    async def __aenter__(self) -> "LocalCluster":
        try:
            if self._own_tier:
                self.tier = CacheTierServer(host=self._spec.host)
                await self.tier.start()
                self._tier_address = self.tier.address
            spec = self._spec
            if self._tier_address is not None:
                spec = replace(spec, cache_tier=self._tier_address)
            self.replicas = [
                SubprocessReplica(f"r{index}", spec)
                for index in range(self._count)
            ]
            # Replica start blocks on testbed rebuild + training
            # (~seconds); spawn them all in parallel off the loop.
            loop = asyncio.get_running_loop()
            await asyncio.gather(
                *(
                    loop.run_in_executor(None, replica.start)
                    for replica in self.replicas
                )
            )
            self.router = ClusterRouter(self.replicas, self._router_config)
            await self.router.start()
        except BaseException:
            await self._teardown()
            raise
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self._teardown()

    async def _teardown(self) -> None:
        if self.router is not None:
            await self.router.stop()
            self.router = None
        if self.replicas:
            loop = asyncio.get_running_loop()
            await asyncio.gather(
                *(
                    loop.run_in_executor(None, replica.stop)
                    for replica in self.replicas
                ),
                return_exceptions=True,
            )
            self.replicas = []
        if self.tier is not None:
            await self.tier.stop()
            self.tier = None

    def __repr__(self) -> str:
        running = sum(1 for replica in self.replicas if replica.alive)
        return (
            f"LocalCluster(replicas={running}/{self._count}, "
            f"tier={self._tier_address!r})"
        )
