"""Replica-crash tests: SIGKILL a real replica process mid-burst.

These are the expensive tests (each stands up a ``LocalCluster`` of
spawned replica processes that rebuild trained state), so the testbed
is tiny and every scenario that can share a cluster does. The
properties under test are the cluster's headline guarantees:

* a mid-burst SIGKILL loses **zero** requests and duplicates none —
  every in-flight request on the dead replica is re-dispatched exactly
  once to the re-hashed owner;
* re-dispatched answers are identical to a single node's (the
  determinism contract across processes);
* a dead replica's cursor handles die with it: ``fetch`` reports
  ``not_found`` instead of silently rebuilding a different result set.
"""

import asyncio

import pytest

from repro.cluster import LocalCluster, ReplicaSpec, RouterConfig
from repro.gateway.client import GatewayClient
from repro.gateway.protocol import ErrorCode, GatewayError
from repro.service.bench import build_trained_testbed
from repro.service.server import MetasearchService, ServiceConfig

SPEC = ReplicaSpec(scale=0.04, seed=2004, n_train=60, n_test=20)


@pytest.fixture(scope="module")
def reference():
    """Single-node answers for the burst queries, computed in-process."""
    context, metasearcher = build_trained_testbed(
        scale=SPEC.scale,
        seed=SPEC.seed,
        n_train=SPEC.n_train,
        n_test=SPEC.n_test,
        batch_size=SPEC.batch_size,
    )
    queries = [
        " ".join(query.terms) for query in context.test_queries[:8]
    ]
    service = MetasearchService(metasearcher, ServiceConfig(max_workers=4))
    try:
        answers = {
            query: service.serve(query, k=3, certainty=0.9)
            for query in queries
        }
    finally:
        service.shutdown()
    return queries, answers


def test_sigkill_mid_burst_loses_and_duplicates_nothing(reference):
    queries, answers = reference
    requests = [queries[i % len(queries)] for i in range(24)]

    async def scenario():
        completed = 0
        killed = False
        async with LocalCluster(
            replicas=2,
            spec=SPEC,
            cache_tier=False,
            router_config=RouterConfig(
                ping_interval_s=0.2, unhealthy_after=1
            ),
        ) as cluster:
            client = await GatewayClient.connect(
                cluster.host, cluster.port
            )

            async def one(query):
                nonlocal completed, killed
                result = await client.search(query, k=3, certainty=0.9)
                completed += 1
                if not killed and completed >= 3:
                    killed = True
                    cluster.kill("r0")
                return query, result

            results = await asyncio.gather(*(one(q) for q in requests))
            snapshot = cluster.router.snapshot()
            survivors = cluster.router.replicas_up
            await client.close()
        return results, snapshot, survivors

    results, snapshot, survivors = asyncio.run(scenario())

    # exactly one response per request, none lost, none doubled
    assert len(results) == len(requests)
    # every answer identical to the single-node baseline
    for query, result in results:
        expected = answers[query]
        assert tuple(result["answer"]["selected"]) == expected.selected
        assert result["answer"]["certainty"] == pytest.approx(
            expected.certainty, abs=1e-9
        )
        assert (
            tuple(result["answer"]["probe_order"]) == expected.probe_order
        )
        assert result["served"]["replica"] in ("r0", "r1")
    # the kill was observed: r0 left the ring, failovers were counted
    assert survivors == ("r1",)
    assert snapshot["counters"]["router_replicas_lost"] == 1
    failovers = [r for _, r in results if r["served"]["failover"]]
    assert len(failovers) == snapshot["counters"]["router_failovers"]
    # post-kill traffic all landed on the survivor
    assert all(
        r["served"]["replica"] == "r1" for _, r in results
        if r["served"]["failover"]
    )


def test_cursor_handles_die_with_their_replica(reference):
    queries, _ = reference

    async def scenario():
        async with LocalCluster(
            replicas=2,
            spec=SPEC,
            cache_tier=False,
            router_config=RouterConfig(
                ping_interval_s=0.2, unhealthy_after=1
            ),
        ) as cluster:
            client = await GatewayClient.connect(
                cluster.host, cluster.port
            )
            # open cursors until both replicas own at least one handle
            handles = {}
            for index, query in enumerate(queries):
                result = await client.search(
                    query, k=3, certainty=0.9, cursor=True
                )
                owner = result["served"]["replica"]
                handles.setdefault(owner, result["handle"])
                if len(handles) == 2:
                    break
            assert set(handles) == {"r0", "r1"}, (
                "sharding never spread across both replicas"
            )
            # both handles page fine while their owners live
            for handle in handles.values():
                page = await client.fetch(handle["run_id"], limit=64)
                assert page["done"] is True
                assert len(page["rows"]) == handle["total"]
            cluster.kill("r0")
            await asyncio.sleep(0.8)  # let the pinger notice
            with pytest.raises(GatewayError) as excinfo:
                await client.fetch(handles["r0"]["run_id"], limit=64)
            dead_code = excinfo.value.code
            # the survivor's handle still pages
            page = await client.fetch(handles["r1"]["run_id"], limit=64)
            await client.close()
            return dead_code, page

    dead_code, page = asyncio.run(scenario())
    assert dead_code is ErrorCode.NOT_FOUND
    assert page["done"] is True


def test_graceful_drain_then_restore(reference):
    """drain_replica: zero-downtime rolling restart, no failovers."""
    queries, answers = reference

    async def scenario():
        async with LocalCluster(
            replicas=2, spec=SPEC, cache_tier=False
        ) as cluster:
            client = await GatewayClient.connect(
                cluster.host, cluster.port
            )
            cluster.router.drain_replica("r0")
            results = [
                await client.search(query, k=3, certainty=0.9)
                for query in queries
            ]
            assert all(
                r["served"]["replica"] == "r1" for r in results
            )
            assert not any(r["served"]["failover"] for r in results)
            cluster.router.restore_replica("r0")
            spread = {
                (await client.search(query, k=3, certainty=0.9))[
                    "served"
                ]["replica"]
                for query in queries
            }
            await client.close()
            return results, spread

    results, spread = asyncio.run(scenario())
    for query, result in zip(queries, results):
        assert (
            tuple(result["answer"]["selected"]) == answers[query].selected
        )
    assert spread == {"r0", "r1"}
