"""Unit tests for the shared value types."""

import pytest

from repro.types import Document, Query, ScoredDocument, SearchResult


class TestQuery:
    def test_terms_and_str(self):
        query = Query(("breast", "cancer"))
        assert query.num_terms == 2
        assert str(query) == "breast cancer"

    def test_single_term(self):
        assert Query(("cancer",)).num_terms == 1

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            Query(())

    def test_hashable_and_equal(self):
        assert Query(("a", "b")) == Query(("a", "b"))
        assert hash(Query(("a", "b"))) == hash(Query(("a", "b")))
        assert Query(("a", "b")) != Query(("b", "a"))

    def test_usable_as_dict_key(self):
        cache = {Query(("x", "y")): 1}
        assert cache[Query(("x", "y"))] == 1


class TestDocument:
    def test_fields(self):
        doc = Document(3, "some text", topic="oncology")
        assert doc.doc_id == 3
        assert doc.text == "some text"
        assert doc.topic == "oncology"

    def test_topic_optional(self):
        assert Document(0, "text").topic is None

    def test_frozen(self):
        doc = Document(0, "text")
        with pytest.raises(AttributeError):
            doc.text = "other"


class TestSearchResult:
    def test_best_score_empty(self):
        result = SearchResult(query=Query(("a",)), num_matches=0)
        assert result.best_score == 0.0
        assert result.top_documents == ()

    def test_best_score_is_first(self):
        result = SearchResult(
            query=Query(("a",)),
            num_matches=2,
            top_documents=(
                ScoredDocument(5, 0.9),
                ScoredDocument(2, 0.4),
            ),
        )
        assert result.best_score == pytest.approx(0.9)
        assert result.num_matches == 2
