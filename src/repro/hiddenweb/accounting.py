"""Probe accounting: the cost model of remote interaction.

Every live query against a Hidden-Web database costs network traffic and
remote processing. The paper's efficiency claims are stated in number of
probes, so the accounting tracks probe counts (and downloaded result
pages) per database, with snapshot/reset support so training-phase and
query-phase costs can be reported separately.

Counters are updated under a lock: the serving layer probes databases
from executor worker threads, and totals must stay exact under
concurrency.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["ProbeAccounting", "ProbeSnapshot"]


@dataclass(frozen=True, slots=True)
class ProbeSnapshot:
    """An immutable view of accumulated costs."""

    probes: int
    documents_downloaded: int

    def __sub__(self, other: "ProbeSnapshot") -> "ProbeSnapshot":
        return ProbeSnapshot(
            probes=self.probes - other.probes,
            documents_downloaded=(
                self.documents_downloaded - other.documents_downloaded
            ),
        )


class ProbeAccounting:
    """Mutable, thread-safe probe-cost meter attached to one database."""

    def __init__(self) -> None:
        self._probes = 0
        self._documents = 0
        self._lock = threading.Lock()

    def record_probe(self, documents_downloaded: int = 0) -> None:
        """Record one live query (plus any result documents fetched)."""
        if documents_downloaded < 0:
            raise ValueError("documents_downloaded must be non-negative")
        with self._lock:
            self._probes += 1
            self._documents += documents_downloaded

    def record_download(self, documents: int = 1) -> None:
        """Record document fetches that are not tied to a new query."""
        if documents < 0:
            raise ValueError("documents must be non-negative")
        with self._lock:
            self._documents += documents

    @property
    def probes(self) -> int:
        """Total live queries issued so far."""
        with self._lock:
            return self._probes

    @property
    def documents_downloaded(self) -> int:
        """Total result documents fetched so far."""
        with self._lock:
            return self._documents

    def snapshot(self) -> ProbeSnapshot:
        """Capture current totals (for phase-relative accounting)."""
        with self._lock:
            return ProbeSnapshot(self._probes, self._documents)

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self._probes = 0
            self._documents = 0

    def __repr__(self) -> str:
        return (
            f"ProbeAccounting(probes={self._probes}, "
            f"documents={self._documents})"
        )
