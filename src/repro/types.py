"""Shared value types used across the library.

These are deliberately small, immutable dataclasses: a :class:`Document`
is what corpora produce and engines index; a :class:`Query` is an analyzed
bag of terms; a :class:`SearchResult` is what a Hidden-Web search interface
returns for one query (the only information a metasearcher can observe
without crawling the database).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Document", "Query", "ScoredDocument", "SearchResult"]


@dataclass(frozen=True, slots=True)
class Document:
    """A single indexable document.

    Parameters
    ----------
    doc_id:
        Identifier unique within its database.
    text:
        Raw document text (pre-analysis).
    topic:
        Optional label of the dominant topic that generated the document.
        Synthetic corpora fill this in; it is never consulted by the
        selection algorithms, only by diagnostics and tests.
    """

    doc_id: int
    text: str
    topic: str | None = None


@dataclass(frozen=True)
class Query:
    """An analyzed keyword query: an ordered tuple of index terms.

    Queries compare and hash by their terms, so a query can key
    dictionaries (e.g. golden-standard caches) directly.
    """

    terms: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("a Query requires at least one term")

    @property
    def num_terms(self) -> int:
        """Number of terms in the query."""
        return len(self.terms)

    def __str__(self) -> str:
        return " ".join(self.terms)


@dataclass(frozen=True, slots=True)
class ScoredDocument:
    """One ranked search hit: a document plus its retrieval score."""

    doc_id: int
    score: float


@dataclass(frozen=True, slots=True)
class SearchResult:
    """What a Hidden-Web database reports for one query.

    Mirrors a real deep-web answer page: the number of matching documents
    (most engines print "N results") and the first page of ranked hits.
    """

    query: Query
    num_matches: int
    top_documents: tuple[ScoredDocument, ...] = field(default_factory=tuple)

    @property
    def best_score(self) -> float:
        """Similarity of the most relevant returned document (0 if none)."""
        if not self.top_documents:
            return 0.0
        return self.top_documents[0].score
