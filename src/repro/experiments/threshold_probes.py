"""Fig. 17: how many probes APro needs per required certainty level t.

Runs APro to completion for each test query at every threshold in the
sweep and averages the probe counts — the paper's final experiment
(§6.4), showing cost growing with the user's certainty demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.policies import ProbePolicy
from repro.core.probing import APro
from repro.core.topk import CorrectnessMetric
from repro.experiments.harness import TrainedPipeline, train_pipeline
from repro.experiments.setup import ExperimentContext

__all__ = ["ThresholdProbesResult", "probes_per_threshold"]

#: The paper's six certainty levels.
DEFAULT_THRESHOLDS: tuple[float, ...] = (0.70, 0.75, 0.80, 0.85, 0.90, 0.95)


@dataclass(frozen=True)
class ThresholdProbesResult:
    """Fig. 17: average probes (and achieved correctness) per threshold."""

    k: int
    metric: CorrectnessMetric
    thresholds: tuple[float, ...]
    avg_probes: tuple[float, ...]
    #: realized average correctness of the returned sets per threshold —
    #: the point of the certainty knob is that this tracks t.
    avg_correctness: tuple[float, ...]
    num_queries: int


def probes_per_threshold(
    context: ExperimentContext,
    pipeline: TrainedPipeline | None = None,
    k: int = 1,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    metric: CorrectnessMetric = CorrectnessMetric.ABSOLUTE,
    policy: ProbePolicy | None = None,
    num_queries: int | None = None,
) -> ThresholdProbesResult:
    """Average APro probe count for each user-required certainty."""
    pipeline = pipeline or train_pipeline(context)
    queries = context.test_queries
    if num_queries is not None:
        queries = queries[:num_queries]
    apro = APro(pipeline.rd_selector, policy=policy)
    avg_probes = []
    avg_correct = []
    for threshold in thresholds:
        probe_counts = []
        correctness = []
        for query in queries:
            session = apro.run(query, k=k, threshold=threshold, metric=metric)
            probe_counts.append(session.num_probes)
            cor_a, cor_p = context.golden.score(
                query, session.final.names, k
            )
            correctness.append(
                cor_a if metric is CorrectnessMetric.ABSOLUTE else cor_p
            )
        avg_probes.append(float(np.mean(probe_counts)))
        avg_correct.append(float(np.mean(correctness)))
    return ThresholdProbesResult(
        k=k,
        metric=metric,
        thresholds=tuple(float(t) for t in thresholds),
        avg_probes=tuple(avg_probes),
        avg_correctness=tuple(avg_correct),
        num_queries=len(queries),
    )
