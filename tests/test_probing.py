"""Tests for the adaptive-probing loop (APro) and the probe policies."""

import pytest

from repro.core.policies import (
    GreedyUsefulnessPolicy,
    LookaheadPolicy,
    MaxUncertaintyPolicy,
    RandomPolicy,
    expected_probes_to_threshold,
)
from repro.core.probing import APro
from repro.core.topk import CorrectnessMetric, TopKComputer
from repro.exceptions import ProbingError
from repro.stats.distribution import DiscreteDistribution as D


def example_rds():
    """The paper's Example 4 RDs plus a clearly irrelevant database."""
    return [
        D.from_pairs([(500.0, 0.4), (1000.0, 0.5), (1500.0, 0.1)]),
        D.from_pairs([(650.0, 0.1), (1300.0, 0.9)]),
        D.impulse(0.0),
    ]


class TestPolicies:
    def test_greedy_prefers_informative_probe(self):
        """Example 6 of the paper: greedy computes expected usefulness."""
        rds = [
            D.from_pairs([(500.0, 0.2), (1500.0, 0.2), (1000.0, 0.6)]),
            D.from_pairs([(700.0, 0.5), (1300.0, 0.5)]),
        ]
        computer = TopKComputer(rds, k=1)
        policy = GreedyUsefulnessPolicy()
        use_0 = policy.usefulness(computer, 0, CorrectnessMetric.ABSOLUTE)
        use_1 = policy.usefulness(computer, 1, CorrectnessMetric.ABSOLUTE)
        _best, current = computer.best_set(CorrectnessMetric.ABSOLUTE)
        assert use_0 >= current - 1e-12
        assert use_1 >= current - 1e-12
        chosen = policy.choose(
            computer, [0, 1], CorrectnessMetric.ABSOLUTE, threshold=0.9
        )
        assert chosen == (0 if use_0 >= use_1 else 1)

    def test_greedy_usefulness_of_impulse_is_current(self):
        rds = example_rds()
        computer = TopKComputer(rds, k=1)
        policy = GreedyUsefulnessPolicy()
        _best, current = computer.best_set(CorrectnessMetric.ABSOLUTE)
        assert policy.usefulness(
            computer, 2, CorrectnessMetric.ABSOLUTE
        ) == pytest.approx(current)

    def test_random_policy_stays_in_candidates(self):
        computer = TopKComputer(example_rds(), k=1)
        policy = RandomPolicy(seed=3)
        for _ in range(10):
            assert policy.choose(
                computer, [0, 1], CorrectnessMetric.ABSOLUTE, 0.9
            ) in (0, 1)

    def test_max_uncertainty_picks_highest_entropy(self):
        rds = [
            D.from_pairs([(1.0, 0.5), (2.0, 0.5)]),  # high entropy
            D.from_pairs([(1.0, 0.99), (2.0, 0.01)]),  # low entropy
        ]
        computer = TopKComputer(rds, k=1)
        policy = MaxUncertaintyPolicy()
        assert policy.choose(
            computer, [0, 1], CorrectnessMetric.ABSOLUTE, 0.9
        ) == 0

    def test_empty_candidates_rejected(self):
        computer = TopKComputer(example_rds(), k=1)
        for policy in (
            GreedyUsefulnessPolicy(),
            RandomPolicy(),
            MaxUncertaintyPolicy(),
        ):
            with pytest.raises(ProbingError):
                policy.choose(computer, [], CorrectnessMetric.ABSOLUTE, 0.9)


class TestExpectedProbesToThreshold:
    def test_zero_when_already_satisfied(self):
        rds = [D.impulse(10.0), D.impulse(1.0)]
        assert expected_probes_to_threshold(rds, 1, 0.9) == 0.0

    def test_one_probe_resolves_two_db_case(self):
        # Two overlapping two-atom RDs; probing either one resolves the
        # top-1 question completely here.
        rds = [
            D.from_pairs([(1.0, 0.5), (4.0, 0.5)]),
            D.from_pairs([(2.0, 0.5), (3.0, 0.5)]),
        ]
        cost = expected_probes_to_threshold(rds, 1, 1.0)
        assert 1.0 <= cost <= 2.0

    def test_budget_guard(self):
        rds = [
            D.from_pairs([(float(v), 0.25) for v in range(i, i + 4)])
            for i in range(8)
        ]
        with pytest.raises(ProbingError):
            expected_probes_to_threshold(rds, 2, 0.99, max_states=50)

    def test_lookahead_policy_chooses_valid(self):
        rds = [
            D.from_pairs([(1.0, 0.5), (4.0, 0.5)]),
            D.from_pairs([(2.0, 0.5), (3.0, 0.5)]),
        ]
        computer = TopKComputer(rds, k=1)
        policy = LookaheadPolicy()
        choice = policy.choose(
            computer, [0, 1], CorrectnessMetric.ABSOLUTE, 0.95
        )
        assert choice in (0, 1)


class TestAProOnTinyTestbed:
    def _selector(self, trained_pipeline):
        return trained_pipeline["selector"]

    def test_zero_threshold_means_no_probes(self, trained_pipeline):
        apro = APro(self._selector(trained_pipeline))
        query = trained_pipeline["test_queries"][0]
        session = apro.run(query, k=1, threshold=0.0)
        assert session.num_probes == 0
        assert session.satisfied

    def test_threshold_one_reaches_certainty(self, trained_pipeline):
        apro = APro(self._selector(trained_pipeline))
        query = trained_pipeline["test_queries"][1]
        session = apro.run(query, k=1, threshold=1.0)
        assert session.final.expected_correctness == pytest.approx(1.0)
        assert session.satisfied

    def test_monotone_trajectory_of_certainty_on_completion(
        self, trained_pipeline
    ):
        apro = APro(self._selector(trained_pipeline))
        query = trained_pipeline["test_queries"][2]
        session = apro.run(query, k=1, threshold=0.99)
        assert (
            session.trajectory[-1].expected_correctness
            >= session.trajectory[0].expected_correctness - 1e-9
        )

    def test_max_probes_budget_respected(self, trained_pipeline):
        apro = APro(self._selector(trained_pipeline))
        query = trained_pipeline["test_queries"][3]
        session = apro.run(query, k=1, threshold=1.0, max_probes=1)
        assert session.num_probes <= 1

    def test_force_probes_continues_past_threshold(self, trained_pipeline):
        apro = APro(self._selector(trained_pipeline))
        query = trained_pipeline["test_queries"][4]
        free = apro.run(query, k=1, threshold=0.0)
        forced = apro.run(query, k=1, threshold=0.0, force_probes=2)
        assert free.num_probes == 0
        # Forced probing continues until the budget or until nothing
        # uncertain remains to probe.
        assert forced.num_probes == 2 or all(
            rd_point.expected_correctness == pytest.approx(1.0)
            for rd_point in forced.trajectory[-1:]
        )

    def test_final_answer_correct_after_full_probing(self, trained_pipeline):
        from repro.core.correctness import GoldenStandard

        mediator = trained_pipeline["mediator"]
        golden = GoldenStandard(mediator)
        apro = APro(self._selector(trained_pipeline))
        for query in trained_pipeline["test_queries"][:10]:
            session = apro.run(query, k=1, threshold=1.0)
            cor_a, _cor_p = golden.score(query, session.final.names, 1)
            assert cor_a == 1.0

    def test_probes_never_repeat_a_database(self, trained_pipeline):
        apro = APro(self._selector(trained_pipeline))
        query = trained_pipeline["test_queries"][5]
        session = apro.run(query, k=2, threshold=1.0)
        probed = [record.index for record in session.records]
        assert len(probed) == len(set(probed))

    def test_trajectory_has_probes_plus_one_points(self, trained_pipeline):
        apro = APro(self._selector(trained_pipeline))
        query = trained_pipeline["test_queries"][6]
        session = apro.run(query, k=1, threshold=0.9)
        assert len(session.trajectory) == session.num_probes + 1

    def test_names_after_clamps(self, trained_pipeline):
        apro = APro(self._selector(trained_pipeline))
        query = trained_pipeline["test_queries"][7]
        session = apro.run(query, k=1, threshold=0.8)
        assert session.names_after(999) == session.final.names

    def test_invalid_threshold(self, trained_pipeline):
        apro = APro(self._selector(trained_pipeline))
        query = trained_pipeline["test_queries"][0]
        with pytest.raises(ProbingError):
            apro.run(query, k=1, threshold=1.5)
        with pytest.raises(ProbingError):
            apro.run(query, k=1, threshold=-0.1)

    def test_higher_threshold_needs_no_fewer_probes(self, trained_pipeline):
        apro = APro(self._selector(trained_pipeline))
        for query in trained_pipeline["test_queries"][:6]:
            low = apro.run(query, k=1, threshold=0.6)
            high = apro.run(query, k=1, threshold=0.95)
            assert high.num_probes >= low.num_probes

    def test_policy_comparison_greedy_not_worse_than_random(
        self, trained_pipeline
    ):
        """Greedy should on average use no more probes than random."""
        greedy = APro(
            self._selector(trained_pipeline), GreedyUsefulnessPolicy()
        )
        random = APro(self._selector(trained_pipeline), RandomPolicy(seed=9))
        queries = trained_pipeline["test_queries"][:12]
        greedy_total = sum(
            greedy.run(q, k=1, threshold=0.9).num_probes for q in queries
        )
        random_total = sum(
            random.run(q, k=1, threshold=0.9).num_probes for q in queries
        )
        assert greedy_total <= random_total + 2
