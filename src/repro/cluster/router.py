"""The consistent-hash router: `gateway/v1` in, `gateway/v1` out.

The router is the cluster's front door. It speaks the exact protocol a
single gateway speaks — a client cannot tell a cluster-of-N from one
node, which is what lets the gateway test suite re-run unchanged over
a cluster-of-1 — and shards every search by its ``(query, k,
certainty)`` fingerprint across the replica ring, so repeats of a
request always land on the same replica and its coalescing and L1
cache do their work.

Lifecycle mirrors :class:`~repro.service.pool.SelectionPool`: health
pings on a cadence, crash detection at the connection, and failed
replicas removed from the ring with in-flight requests re-dispatched
to their re-hashed owner **exactly once** — a search is deterministic
and side-effect-free, so re-executing it is always safe, and each
client request still gets exactly one response. Typed gateway errors
(``overloaded``, ``bad_request``...) are the replica's verdict and
pass through untouched; only connection-class failures count against a
replica.

Cursor affinity rides the handle itself: the router prefixes
``run_id`` with the owning replica's name (``r0/3f9a...``), routes
``fetch`` by that prefix, and re-prefixes in the response — no routing
table to keep consistent, and a handle dies with its replica exactly
as its server-held rows do.

With tracing enabled the router mints the ``router.request`` root,
ships its wire position to the replica (the request's ``trace``
field), and replays the replica's returned spans — gateway, service,
pool, probes — into its own sink: one span tree across three process
boundaries, the ``trace`` op on the router returning all of it.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, ReproError
from repro.gateway.client import GatewayClient
from repro.gateway.protocol import (
    ErrorCode,
    GatewayError,
    GatewayRequest,
    encode,
    error_payload,
    ok_payload,
    parse_request,
)
from repro.obs import (
    RingBufferTraceSink,
    Tracer,
    replay_spans,
    wire_context,
)
from repro.service.metrics import MetricsRegistry
from repro.cluster.ring import ConsistentHashRing, request_fingerprint

__all__ = ["RouterConfig", "ClusterRouter"]


@dataclass(frozen=True)
class RouterConfig:
    """Tunables of the cluster front end.

    Parameters
    ----------
    host / port:
        Listen address; port ``0`` binds an ephemeral port.
    points_per_node:
        Virtual ring points per replica (more = smoother key spread,
        slower membership changes).
    ping_interval_s:
        Health-ping cadence; ``0`` disables the pinger (tests that
        drive failure detection through request traffic).
    ping_timeout_s:
        Budget for one health ping round trip.
    unhealthy_after:
        Consecutive failed pings before a replica is marked down and
        removed from the ring.
    forward_timeout_s:
        Bound on one forwarded request (``None`` = unbounded; client
        deadlines remain the per-request mechanism).
    drain_timeout_s:
        :meth:`stop` waits this long for in-flight requests.
    trace:
        Mint ``router.request`` roots and collect replica span trees
        into a ring buffer served by the router's ``trace`` op.
    trace_buffer:
        Ring-buffer capacity in span records.
    max_line_bytes:
        Framing guard on one request line.
    """

    host: str = "127.0.0.1"
    port: int = 0
    points_per_node: int = 64
    ping_interval_s: float = 1.0
    ping_timeout_s: float = 2.0
    unhealthy_after: int = 2
    forward_timeout_s: float | None = None
    drain_timeout_s: float = 10.0
    trace: bool = False
    trace_buffer: int = 4096
    max_line_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.points_per_node < 1:
            raise ConfigurationError(
                f"points_per_node must be >= 1, got {self.points_per_node}"
            )
        if self.ping_interval_s < 0:
            raise ConfigurationError(
                f"ping_interval_s must be >= 0, got {self.ping_interval_s}"
            )
        if self.ping_timeout_s <= 0:
            raise ConfigurationError(
                f"ping_timeout_s must be > 0, got {self.ping_timeout_s}"
            )
        if self.unhealthy_after < 1:
            raise ConfigurationError(
                f"unhealthy_after must be >= 1, got {self.unhealthy_after}"
            )
        if (
            self.forward_timeout_s is not None
            and self.forward_timeout_s <= 0
        ):
            raise ConfigurationError(
                f"forward_timeout_s must be > 0 (or None), "
                f"got {self.forward_timeout_s}"
            )
        if self.drain_timeout_s < 0:
            raise ConfigurationError(
                f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}"
            )
        if self.trace_buffer < 1:
            raise ConfigurationError(
                f"trace_buffer must be >= 1, got {self.trace_buffer}"
            )


class _ReplicaLink:
    """One replica's address, connection, and health bookkeeping."""

    __slots__ = ("name", "host", "port", "client", "down", "failures", "lock")

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.client: GatewayClient | None = None
        self.down = False
        self.failures = 0
        self.lock = asyncio.Lock()


class ClusterRouter:
    """Shard `gateway/v1` requests across replicas; survive their deaths.

    Parameters
    ----------
    replicas:
        Objects exposing ``name`` / ``host`` / ``port`` (either replica
        flavour from :mod:`repro.cluster.replica`, or anything
        duck-typed the same). Names must not contain ``/`` — it is the
        cursor-handle prefix separator.
    config:
        Front-end tunables.
    """

    def __init__(self, replicas, config: RouterConfig | None = None) -> None:
        self._config = config or RouterConfig()
        self._links: dict[str, _ReplicaLink] = {}
        for replica in replicas:
            if "/" in replica.name:
                raise ConfigurationError(
                    f"replica name must not contain '/', "
                    f"got {replica.name!r}"
                )
            if replica.name in self._links:
                raise ConfigurationError(
                    f"duplicate replica name {replica.name!r}"
                )
            self._links[replica.name] = _ReplicaLink(
                replica.name, replica.host, replica.port
            )
        if not self._links:
            raise ConfigurationError("a router needs at least one replica")
        self._ring = ConsistentHashRing(
            self._links, points_per_node=self._config.points_per_node
        )
        self._metrics = MetricsRegistry()
        for name in (
            "router_requests",
            "router_searches",
            "router_fetches",
            "router_failovers",
            "router_replicas_lost",
            "router_refused",
        ):
            self._metrics.counter(name)
        self._metrics.gauge("router_replicas_up").set(len(self._links))
        self._metrics.histogram("router_request_ms", deterministic=False)
        self._trace_ring: RingBufferTraceSink | None = None
        self._tracer: Tracer | None = None
        if self._config.trace:
            self._trace_ring = RingBufferTraceSink(self._config.trace_buffer)
            self._tracer = Tracer(self._trace_ring)
        self._server: asyncio.AbstractServer | None = None
        self._pinger: asyncio.Task | None = None
        self._draining = False
        self._tasks: set[asyncio.Task] = set()
        self._connections: set[asyncio.StreamWriter] = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise ReproError("router already started")
        self._draining = False
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self._config.host,
            port=self._config.port,
            limit=self._config.max_line_bytes,
        )
        if self._config.ping_interval_s > 0:
            self._pinger = asyncio.create_task(self._ping_loop())

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise ReproError("router is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def replicas_up(self) -> tuple[str, ...]:
        """Names currently in the ring."""
        return self._ring.nodes

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Drain: refuse new requests, finish in-flight, close links."""
        self._draining = True
        if self._pinger is not None:
            self._pinger.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._pinger
            self._pinger = None
        server, self._server = self._server, None
        if server is not None:
            server.close()
        drain_deadline = time.monotonic() + self._config.drain_timeout_s
        while self._tasks:
            remaining = drain_deadline - time.monotonic()
            pending = set(self._tasks)
            if remaining <= 0:
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
                break
            done, still_pending = await asyncio.wait(
                pending, timeout=remaining
            )
            if still_pending:
                for task in still_pending:
                    task.cancel()
                await asyncio.gather(*still_pending, return_exceptions=True)
                break
        for writer in list(self._connections):
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._connections.clear()
        if server is not None:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        for link in self._links.values():
            if link.client is not None:
                with contextlib.suppress(Exception):
                    await link.client.close()
                link.client = None

    async def __aenter__(self) -> "ClusterRouter":
        if self._server is None:
            await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def drain_replica(self, name: str) -> None:
        """Take one replica out of rotation without marking it dead.

        New requests re-hash to the survivors immediately; requests
        already forwarded complete over the open connection. The caller
        then stops the replica process at leisure — the per-replica
        half of a rolling restart.
        """
        if name not in self._links:
            raise ReproError(f"unknown replica {name!r}")
        self._ring.remove(name)
        self._observe_ring()

    def restore_replica(self, name: str) -> None:
        """Return a drained (or recovered) replica to the ring."""
        link = self._links.get(name)
        if link is None:
            raise ReproError(f"unknown replica {name!r}")
        link.down = False
        link.failures = 0
        self._ring.add(name)
        self._observe_ring()

    # -- health ----------------------------------------------------------------

    async def _ping_loop(self) -> None:
        while True:
            await asyncio.sleep(self._config.ping_interval_s)
            for name in self._ring.nodes:
                link = self._links[name]
                try:
                    client = await self._client(link)
                    await asyncio.wait_for(
                        client.ping(), self._config.ping_timeout_s
                    )
                except asyncio.CancelledError:
                    raise
                except Exception:  # noqa: BLE001 - any failure counts
                    link.failures += 1
                    if link.failures >= self._config.unhealthy_after:
                        await self._mark_down(link)
                else:
                    link.failures = 0

    async def _mark_down(self, link: _ReplicaLink) -> None:
        """Remove a dead replica from the ring; its keys re-hash."""
        if link.down:
            return
        link.down = True
        self._ring.remove(link.name)
        self._metrics.counter("router_replicas_lost").inc()
        self._observe_ring()
        client, link.client = link.client, None
        if client is not None:
            with contextlib.suppress(Exception):
                await client.close()

    def _observe_ring(self) -> None:
        self._metrics.gauge("router_replicas_up").set(len(self._ring))

    async def _client(self, link: _ReplicaLink) -> GatewayClient:
        if link.down:
            raise ReproError(f"replica {link.name!r} is down")
        async with link.lock:
            if link.client is None:
                link.client = await GatewayClient.connect(
                    link.host, link.port
                )
            return link.client

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        connection_tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(
                        writer,
                        write_lock,
                        error_payload(
                            None,
                            ErrorCode.BAD_REQUEST,
                            f"request line exceeds "
                            f"{self._config.max_line_bytes} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._process(line, writer, write_lock)
                )
                connection_tasks.add(task)
                self._tasks.add(task)
                task.add_done_callback(connection_tasks.discard)
                task.add_done_callback(self._tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if connection_tasks:
                await asyncio.wait(connection_tasks)
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        payload: dict,
    ) -> None:
        try:
            async with lock:
                writer.write(encode(payload))
                await writer.drain()
        except (ConnectionError, RuntimeError):
            pass

    async def _process(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self._metrics.counter("router_requests").inc()
        request_id = None
        try:
            request = parse_request(line)
            request_id = request.id
            if request.op == "ping":
                payload = ok_payload(
                    request_id,
                    {
                        "pong": True,
                        "draining": self._draining,
                        "replicas": len(self._ring),
                    },
                )
            elif request.op == "metrics":
                payload = ok_payload(
                    request_id, await self._aggregate("metrics")
                )
            elif request.op == "stats":
                payload = ok_payload(
                    request_id, await self._aggregate("stats")
                )
            elif request.op == "trace":
                spans = (
                    []
                    if self._trace_ring is None
                    else self._trace_ring.recent(request.limit)
                )
                payload = ok_payload(
                    request_id,
                    {"enabled": self._tracer is not None, "spans": spans},
                )
            elif request.op == "fetch":
                payload = ok_payload(
                    request_id, await self._route_fetch(request)
                )
            else:
                payload = ok_payload(
                    request_id, await self._route_search(request)
                )
        except asyncio.CancelledError:
            raise
        except GatewayError as error:
            if request_id is None:
                request_id = error.request_id  # parse failed past the id
            payload = error_payload(
                request_id, error.code, str(error), error.retry_after_ms
            )
        except ReproError as error:
            payload = error_payload(
                request_id, ErrorCode.INTERNAL, str(error)
            )
        except Exception as error:  # noqa: BLE001 - boundary
            payload = error_payload(
                request_id,
                ErrorCode.INTERNAL,
                f"{type(error).__name__}: {error}",
            )
        await self._write(writer, write_lock, payload)

    # -- aggregation ops -------------------------------------------------------

    def snapshot(self) -> dict:
        """The router's own instruments (one JSON-able mapping)."""
        out = self._metrics.snapshot()
        out["replicas_up"] = list(self._ring.nodes)
        out["replicas_known"] = sorted(self._links)
        return out

    async def _aggregate(self, op: str) -> dict:
        """Fan one read-only op out to every live replica."""
        names = list(self._ring.nodes)

        async def one(name: str):
            link = self._links[name]
            try:
                client = await self._client(link)
                return await asyncio.wait_for(
                    client.call({"op": op}), self._config.ping_timeout_s
                )
            except Exception:  # noqa: BLE001 - a dead replica's stats are gone
                return None

        results = await asyncio.gather(*(one(name) for name in names))
        return {
            "router": self.snapshot(),
            "replicas": {
                name: result
                for name, result in zip(names, results)
                if result is not None
            },
        }

    # -- search / fetch routing ------------------------------------------------

    def _refuse_if_draining(self) -> None:
        if self._draining:
            self._metrics.counter("router_refused").inc()
            raise GatewayError(
                ErrorCode.SHUTTING_DOWN, "router is draining"
            )

    async def _route_search(self, request: GatewayRequest) -> dict:
        self._refuse_if_draining()
        self._metrics.counter("router_searches").inc()
        started = time.perf_counter()
        if self._tracer is None:
            result = await self._forward_search(request)
        else:
            with self._tracer.trace("router.request"):
                result = await self._forward_search(request)
        self._metrics.histogram(
            "router_request_ms", deterministic=False
        ).observe((time.perf_counter() - started) * 1000.0)
        return result

    async def _forward_search(self, request: GatewayRequest) -> dict:
        key = request_fingerprint(
            request.query, request.k, request.certainty
        )
        forward: dict = {
            "op": "search",
            "query": request.query,
            "k": request.k,
            "certainty": request.certainty,
        }
        if request.deadline_ms is not None:
            forward["deadline_ms"] = request.deadline_ms
        if request.cursor_requested:
            forward["cursor"] = True
        wire = wire_context()
        if wire is not None:
            forward["trace"] = wire
        failover = False
        for attempt in range(2):
            name = self._ring.node(key)
            link = self._links[name]
            try:
                client = await self._client(link)
                call = client.call(dict(forward))
                if self._config.forward_timeout_s is not None:
                    call = asyncio.wait_for(
                        call, self._config.forward_timeout_s
                    )
                result = await call
            except GatewayError:
                # The replica is alive and answered with a typed error
                # (overloaded, bad request...): its verdict, passed
                # through untouched. Never a failover trigger.
                raise
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - connection-class failure
                # The replica died under this request (or the pipe to
                # it did). Remove it from the ring and re-dispatch
                # exactly once to the re-hashed owner: the dead replica
                # never responded, so the client still receives exactly
                # one answer — and a search is deterministic and
                # side-effect-free, so re-executing it is safe even if
                # the replica processed it before dying.
                await self._mark_down(link)
                if attempt == 1:
                    raise
                self._metrics.counter("router_failovers").inc()
                failover = True
                continue
            return self._postprocess(result, name, failover)
        raise ReproError("unreachable")  # pragma: no cover

    def _postprocess(self, result: object, name: str, failover: bool) -> dict:
        if not isinstance(result, dict):
            raise ReproError(f"malformed replica result: {result!r}")
        served = result.get("served")
        if isinstance(served, dict):
            # The replica's collected span tree: replay into the
            # router's sink (it nests under router.request), then strip
            # — the client sees the same response shape a single
            # gateway produces.
            spans = served.pop("spans", None)
            if spans:
                replay_spans(spans)
            served["replica"] = name
            served["failover"] = failover
        handle = result.get("handle")
        if isinstance(handle, dict) and "run_id" in handle:
            # Cursor affinity: the prefix is the routing table.
            handle["run_id"] = f"{name}/{handle['run_id']}"
        return result

    async def _route_fetch(self, request: GatewayRequest) -> dict:
        self._refuse_if_draining()
        self._metrics.counter("router_fetches").inc()
        name, sep, run_id = request.run_id.partition("/")
        if not sep or not run_id:
            raise GatewayError(
                ErrorCode.NOT_FOUND,
                f"run_id {request.run_id!r} carries no replica prefix",
            )
        link = self._links.get(name)
        if link is None or name not in self._ring:
            raise GatewayError(
                ErrorCode.NOT_FOUND,
                f"replica {name!r} is gone; its result sets died with it",
            )
        forward = {
            "op": "fetch",
            "run_id": run_id,
            "limit": request.limit,
        }
        if request.cursor is not None:
            forward["cursor"] = request.cursor
        try:
            client = await self._client(link)
            result = await client.call(forward)
        except GatewayError:
            raise
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - connection-class failure
            # No re-dispatch for fetch: the rows lived only on that
            # replica. Honest not_found beats a silently different
            # result set.
            await self._mark_down(link)
            raise GatewayError(
                ErrorCode.NOT_FOUND,
                f"replica {name!r} died; its result sets died with it",
            ) from None
        if isinstance(result, dict) and "run_id" in result:
            result["run_id"] = f"{name}/{result['run_id']}"
        if not isinstance(result, dict):
            raise ReproError(f"malformed replica result: {result!r}")
        return result

    def __repr__(self) -> str:
        state = "draining" if self._draining else (
            "listening" if self._server is not None else "stopped"
        )
        return (
            f"ClusterRouter({state}, replicas={len(self._ring)}/"
            f"{len(self._links)})"
        )
