"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro.core.probing import APro
from repro.core.topk import CorrectnessMetric, TopKComputer
from repro.engine.index import InvertedIndex
from repro.engine.searcher import Searcher
from repro.exceptions import ConfigurationError, ProbingError
from repro.experiments.setup import PaperSetupConfig, build_paper_context
from repro.stats.distribution import DiscreteDistribution
from repro.text.analyzer import Analyzer
from repro.types import Document, Query


class TestEmptyAndDegenerateEngines:
    def test_empty_index_searches_cleanly(self):
        index = InvertedIndex(Analyzer())
        index.freeze()
        searcher = Searcher(index)
        result = searcher.search(Query(("anything",)))
        assert result.num_matches == 0
        assert result.top_documents == ()

    def test_single_document_database(self):
        index = InvertedIndex(Analyzer(stem=False))
        index.add(Document(0, "lonely document text"))
        index.freeze()
        assert index.match_count(Query(("lonely",))) == 1
        assert index.idf("lonely") > 0

    def test_document_of_only_stopwords(self):
        index = InvertedIndex(Analyzer())
        index.add(Document(0, "the of and is"))
        index.freeze()
        assert index.num_documents == 1
        assert index.vocabulary_size == 0

    def test_freeze_idempotent(self):
        index = InvertedIndex(Analyzer(stem=False))
        index.add(Document(0, "alpha beta"))
        index.freeze()
        index.freeze()  # second call is a no-op
        assert index.num_documents == 1


class TestDistributionEdges:
    def test_sample_zero_count(self):
        dist = DiscreteDistribution.impulse(3.0)
        draws = dist.sample(np.random.default_rng(0), 0)
        assert len(draws) == 0

    def test_two_atom_extremes(self):
        dist = DiscreteDistribution.from_pairs([(0.0, 1e-9), (1.0, 1.0)])
        assert dist.prob_of(0.0) < 1e-6
        assert dist.mean() == pytest.approx(1.0, abs=1e-6)

    def test_large_values(self):
        dist = DiscreteDistribution.from_pairs([(1e12, 0.5), (2e12, 0.5)])
        assert dist.mean() == pytest.approx(1.5e12)


class TestTopKEdges:
    def test_single_database(self):
        computer = TopKComputer([DiscreteDistribution.impulse(5.0)], 1)
        best, score = computer.best_set(CorrectnessMetric.ABSOLUTE)
        assert best == (0,)
        assert score == 1.0

    def test_identical_rds_tie_chain(self):
        rd = DiscreteDistribution.from_pairs([(1.0, 0.5), (2.0, 0.5)])
        rds = [rd, rd, rd]
        computer = TopKComputer(rds, 2)
        marginals = computer.marginals()
        # Earlier databases win ties, so marginals must be non-increasing.
        assert marginals[0] >= marginals[1] >= marginals[2]
        assert marginals.sum() == pytest.approx(2.0)

    def test_zero_valued_relevancies(self):
        rds = [
            DiscreteDistribution.impulse(0.0),
            DiscreteDistribution.impulse(0.0),
        ]
        computer = TopKComputer(rds, 1)
        best, score = computer.best_set(CorrectnessMetric.ABSOLUTE)
        assert best == (0,)  # tie at zero goes to the first database
        assert score == pytest.approx(1.0)


class _MisbehavingPolicy:
    """A policy that returns a database outside the candidate list."""

    def choose(self, computer, candidates, metric, threshold):
        return -1


class TestProbingEdges:
    def test_misbehaving_policy_detected(self, trained_pipeline):
        apro = APro(trained_pipeline["selector"], _MisbehavingPolicy())
        query = trained_pipeline["test_queries"][0]
        session_needed = (
            trained_pipeline["selector"]
            .select(query, 1)
            .expected_correctness
            < 1.0
        )
        if not session_needed:
            pytest.skip("query already certain; no probe would be issued")
        with pytest.raises(ProbingError):
            apro.run(query, k=1, threshold=1.0)

    def test_force_probes_capped_by_max_probes(self, trained_pipeline):
        apro = APro(trained_pipeline["selector"])
        query = trained_pipeline["test_queries"][1]
        session = apro.run(
            query, k=1, threshold=0.0, force_probes=10, max_probes=2
        )
        assert session.num_probes <= 2

    def test_zero_max_probes(self, trained_pipeline):
        apro = APro(trained_pipeline["selector"])
        query = trained_pipeline["test_queries"][2]
        session = apro.run(query, k=1, threshold=1.0, max_probes=0)
        assert session.num_probes == 0

    def test_k_equals_n_needs_no_probes(self, trained_pipeline):
        apro = APro(trained_pipeline["selector"])
        query = trained_pipeline["test_queries"][3]
        n = len(trained_pipeline["mediator"])
        session = apro.run(query, k=n, threshold=1.0)
        assert session.num_probes == 0
        assert session.final.expected_correctness == 1.0


class TestSetupEdges:
    def test_impossible_filter_exhausts_budget(self):
        config = PaperSetupConfig(
            scale=0.02,
            n_train=3,
            n_test=2,
            min_matching_databases=21,  # more than the 20 databases
        )
        with pytest.raises(ConfigurationError):
            build_paper_context(config)
