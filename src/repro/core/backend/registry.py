"""Backend registry: name -> :class:`ArrayBackend` singleton.

Selection order for the default backend:

1. an explicit ``use_backend(...)`` override (tests, benchmarks),
2. the ``REPRO_BACKEND`` environment variable,
3. ``"numpy"``.

``register_backend`` is the public hook for out-of-tree engines (for
example a compiled Cython/C path): register a factory under a new name
and select it via ``REPRO_BACKEND`` — no core code changes required.
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, Iterator

from repro.core.backend.base import ArrayBackend
from repro.exceptions import ConfigurationError

__all__ = [
    "BACKEND_ENV",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "use_backend",
]

BACKEND_ENV = "REPRO_BACKEND"

_REGISTRY: dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: dict[str, ArrayBackend] = {}
_OVERRIDE: list[str] = []


def register_backend(
    name: str, factory: Callable[[], ArrayBackend], *, replace: bool = False
) -> None:
    """Register ``factory`` under ``name`` (lowercased).

    ``factory`` is called at most once; the instance is cached. Pass
    ``replace=True`` to override an existing registration (the cached
    instance, if any, is dropped).
    """

    key = str(name).strip().lower()
    if not key:
        raise ConfigurationError("backend name must be non-empty")
    if not replace and key in _REGISTRY:
        raise ConfigurationError(f"backend {key!r} is already registered")
    _REGISTRY[key] = factory
    _INSTANCES.pop(key, None)


def unregister_backend(name: str) -> None:
    """Remove a registration (primarily for tests of the hook itself)."""

    key = str(name).strip().lower()
    _REGISTRY.pop(key, None)
    _INSTANCES.pop(key, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""

    return tuple(sorted(_REGISTRY))


def default_backend_name() -> str:
    """Resolve the active default backend name (override > env > numpy)."""

    if _OVERRIDE:
        return _OVERRIDE[-1]
    raw = os.environ.get(BACKEND_ENV)
    if raw is None or not raw.strip():
        return "numpy"
    key = raw.strip().lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"{BACKEND_ENV}={raw!r} names an unknown backend; "
            f"available: {', '.join(available_backends())}"
        )
    return key


def get_backend(spec: "str | ArrayBackend | None" = None) -> ArrayBackend:
    """Resolve ``spec`` to a backend instance.

    ``None`` resolves the default (override > ``REPRO_BACKEND`` >
    ``numpy``); a string is looked up in the registry; an
    :class:`ArrayBackend` instance passes through unchanged.
    """

    if isinstance(spec, ArrayBackend):
        return spec
    name = default_backend_name() if spec is None else str(spec).strip().lower()
    instance = _INSTANCES.get(name)
    if instance is None:
        factory = _REGISTRY.get(name)
        if factory is None:
            raise ConfigurationError(
                f"unknown backend {name!r}; "
                f"available: {', '.join(available_backends())}"
            )
        instance = factory()
        _INSTANCES[name] = instance
    return instance


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[ArrayBackend]:
    """Temporarily make ``name`` the default backend (re-entrant)."""

    backend = get_backend(name)
    _OVERRIDE.append(backend.name)
    try:
        yield backend
    finally:
        _OVERRIDE.pop()


def _register_builtin_backends() -> None:
    from repro.core.backend.numpy_backend import NumpyBackend
    from repro.core.backend.python_backend import PythonBackend

    register_backend("numpy", NumpyBackend, replace=True)
    register_backend("python", PythonBackend, replace=True)


_register_builtin_backends()
