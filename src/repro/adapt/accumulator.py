"""Sliding-window ED accumulation: turning observations into models.

Two distinct products come out of the same windows:

* :meth:`EDAccumulator.recent_ed` — the ED of *only* the windowed
  samples for one database. This is what the drift detector tests
  against the trained baseline: pure recent evidence, no prior, so a
  genuine shift is not diluted by the training mass.
* :meth:`EDAccumulator.refreshed_model` — a full
  :class:`~repro.core.training.ErrorModel` ready to swap into the
  serving stack: the trained baseline replayed as a prior, plus every
  windowed sample on top. The baseline keeps sparsely-observed
  (database, type) slices usable through the model's pooled-fallback
  chain; the window moves the slices that are actually drifting.

Replaying through the baseline's own serialized state
(``from_state_dict(state_dict())``) guarantees the refresh is built on
an exact copy — with an *empty* window the refreshed state is
bit-identical to the baseline, so the downstream content-addressed
fingerprint is unchanged and the swap is a free no-op.
"""

from __future__ import annotations

from repro.adapt.observations import ObservationSink
from repro.core.errors import ErrorDistribution
from repro.core.training import ErrorModel

__all__ = ["EDAccumulator"]


class EDAccumulator:
    """Builds recent EDs and refreshed models from a sink's windows.

    Parameters
    ----------
    baseline:
        The trained model the service started with. Its serialized
        state is snapshotted once at construction; later mutations of
        the live object do not leak into refreshes.
    sink:
        The observation windows to accumulate from.
    """

    def __init__(self, baseline: ErrorModel, sink: ObservationSink) -> None:
        self._baseline_state = baseline.state_dict()
        self._edges = tuple(self._baseline_state["edges"])
        self._sink = sink

    @property
    def sink(self) -> ObservationSink:
        """The windows being accumulated."""
        return self._sink

    def recent_ed(self, database: str) -> ErrorDistribution:
        """The ED of *database*'s windowed samples alone.

        Uses the baseline's bin edges so a χ² against any baseline
        slice is well-formed. Empty windows yield an empty ED (the
        detector's sample floor handles those).
        """
        ed = ErrorDistribution(self._edges)
        ed.observe_all(
            observation.error
            for observation in self._sink.observations(database)
        )
        return ed

    def refreshed_model(self) -> ErrorModel:
        """Baseline-as-prior plus every windowed sample, as a new model."""
        model = ErrorModel.from_state_dict(self._baseline_state)
        for database in self._sink.databases():
            for observation in self._sink.observations(database):
                model.observe(
                    database, observation.query_type, observation.error
                )
        return model

    def refreshed_state(self) -> dict:
        """:meth:`refreshed_model`, serialized (what a swap ships)."""
        return self.refreshed_model().state_dict()

    def __repr__(self) -> str:
        return f"EDAccumulator(sink={self._sink!r})"
